"""The recognizer: finding instruction-pointer hyperplanes worth
predicting (§4.3).

The default recognizer induces a hyperplane in state space by fixing an
instruction-pointer value: the trajectory's crossings of that hyperplane
are the superstep boundaries. Its job is to pick the IP whose crossing
states are (a) widely spaced enough that speculation pays for its lookup
cost and (b) predictable by the learning ensemble.

Following the paper's parallel search, the implementation:

1. traces a window of execution and computes occurrence statistics for
   every IP value seen;
2. filters to IPs that recur enough, assigning each a *stride* — how many
   occurrences to group into one superstep so the superstep meets the
   minimum instruction spacing (this is the adaptation the paper
   describes for Collatz, where the recognizer "consider[s] only every
   4000 instances" of a too-frequent IP);
3. shortlists candidates by spacing regularity, then *validates* the
   shortlist exactly the way the paper does: train a fresh predictor
   ensemble on each candidate's observed state sequence and measure how
   well it predicts the next crossing state;
4. selects the candidate maximizing predicted-jump utility — accuracy
   times expected superstep length, the paper's "proxy for the utility
   of the speculative execution that would result".
"""

import math

import numpy as np

from repro.errors import EngineError
from repro.core.excitation import ExcitationTracker
from repro.core.predictors.ensemble import default_ensemble
from repro.core.speculation import run_speculation
from repro.machine.executor import STOP_BREAKPOINT


class CandidateReport:
    """Diagnostics for one candidate IP considered by the recognizer."""

    __slots__ = ("ip", "occurrences", "stride", "mean_gap", "max_gap",
                 "gap_cv", "accuracy", "utility", "validated", "alive",
                 "first_pos")

    def __init__(self, ip, occurrences, stride, mean_gap, gap_cv,
                 max_gap=None, accuracy=0.0, utility=0.0, validated=False,
                 alive=True, first_pos=0):
        self.ip = ip
        self.occurrences = occurrences
        self.stride = stride
        self.mean_gap = mean_gap
        self.max_gap = max_gap if max_gap is not None else mean_gap
        self.gap_cv = gap_cv
        self.accuracy = accuracy
        self.utility = utility
        self.validated = validated
        self.alive = alive
        self.first_pos = first_pos

    def __repr__(self):
        return ("CandidateReport(ip=0x%x, occ=%d, stride=%d, gap=%.0f, "
                "cv=%.3f, acc=%.3f, util=%.0f)"
                % (self.ip, self.occurrences, self.stride, self.mean_gap,
                   self.gap_cv, self.accuracy, self.utility))


class RecognizedIP:
    """The recognizer's output: where to cut the trajectory."""

    __slots__ = ("ip", "stride", "mean_gap", "max_gap",
                 "superstep_instructions", "converge_instructions",
                 "search_instructions", "candidates", "training_states")

    def __init__(self, ip, stride, mean_gap, converge_instructions,
                 candidates, search_instructions=None, max_gap=None,
                 training_states=()):
        self.ip = ip
        self.stride = stride
        self.mean_gap = mean_gap
        self.max_gap = max_gap if max_gap is not None else mean_gap
        self.superstep_instructions = stride * mean_gap
        self.converge_instructions = converge_instructions
        self.search_instructions = (search_instructions
                                    if search_instructions is not None
                                    else converge_instructions)
        self.candidates = candidates
        # The winning candidate's observed states: recognition *is* the
        # predictors' first training data (§4.3's search trains a private
        # copy of the learning algorithms per candidate), so engines
        # start from these instead of relearning from scratch.
        self.training_states = list(training_states)

    def drought_limit(self):
        """Instructions without a RIP crossing that signal phase death.

        When the main thread runs this long without crossing the
        hyperplane, the current RIP has stopped occurring — program
        behavior changed (e.g. 2mm moved to its second loop nest) and
        the recognizer must re-run from the current state (§4.4.1's
        ``reset``).
        """
        return int(self.superstep_instructions * 8) + 2048

    def speculation_budget(self, factor):
        """Instruction budget for one superstep's speculation.

        Generous on purpose: superstep lengths can be heavy-tailed
        (Collatz sequence lengths grow with n past anything the search
        window saw), and an aborted speculation is a guaranteed miss
        while an over-budgeted garbage speculation merely wastes one
        worker's time.
        """
        by_mean = self.mean_gap * self.stride * factor
        by_max = self.max_gap * self.stride * 6.0
        return int(max(by_mean, by_max)) + 256

    def __repr__(self):
        return ("RecognizedIP(ip=0x%x, stride=%d, superstep~%.0f, "
                "converge=%d)" % (self.ip, self.stride,
                                  self.superstep_instructions,
                                  self.converge_instructions))


class Recognizer:
    def __init__(self, config):
        self.config = config

    # -- phase 1: occurrence statistics --------------------------------------

    def _machine_from(self, program, start_state):
        fast_path = self.config.fast_path
        if start_state is None:
            return program.make_machine(fast_path=fast_path)
        from repro.machine.executor import Machine
        from repro.machine.state import StateVector
        state = StateVector(program.layout, bytearray(start_state))
        return Machine(state, program.make_context(fast_path=fast_path))

    def _collect_positions(self, program, start_state=None):
        machine = self._machine_from(program, start_state)
        trace = machine.ip_trace(self.config.recognizer_window)
        positions = {}
        for pos, ip in enumerate(trace):
            positions.setdefault(ip, []).append(pos)
        return trace, positions

    def _candidate_stats(self, positions, trace_len):
        config = self.config
        candidates = []
        for ip, pos_list in positions.items():
            if len(pos_list) < config.recognizer_min_occurrences:
                continue
            gaps = [b - a for a, b in zip(pos_list, pos_list[1:])]
            if not gaps:
                continue
            mean_gap = sum(gaps) / len(gaps)
            if mean_gap <= 0:
                continue
            stride = max(1, math.ceil(
                config.min_superstep_instructions / mean_gap))
            if len(pos_list) // stride < 3:
                continue  # too few supersteps to learn from
            variance = sum((g - mean_gap) ** 2 for g in gaps) / len(gaps)
            cv = math.sqrt(variance) / mean_gap
            # An IP that stopped occurring well before the window's end
            # belongs to a finished phase (input setup, a completed loop
            # nest) — speculating on it buys nothing going forward.
            alive = pos_list[-1] + 4 * max(gaps) >= trace_len
            candidates.append(CandidateReport(
                ip, len(pos_list), stride, mean_gap, cv, max_gap=max(gaps),
                alive=alive, first_pos=pos_list[0]))
        return candidates

    def _shortlist(self, candidates):
        """Pick a diverse shortlist for validation.

        IPs inside the same loop body share occurrence counts and gap
        statistics and would crowd out everything else, so near-identical
        candidates are collapsed to one representative. The surviving
        candidates fill the shortlist alternately from two rankings —
        most regular spacing and widest effective superstep — so both a
        tight inner loop and a long outer loop get validated.
        """
        seen = set()
        unique = []
        for c in sorted(candidates, key=lambda c: c.ip):
            key = (c.occurrences, round(c.mean_gap, 1))
            if key in seen:
                continue
            seen.add(key)
            unique.append(c)
        limit = self.config.recognizer_max_candidates
        by_regularity = sorted(unique, key=lambda c: (c.gap_cv,
                                                      -c.mean_gap * c.stride))
        by_width = sorted(unique, key=lambda c: -c.mean_gap * c.stride)
        shortlist = []
        chosen = set()
        for a, b in zip(by_regularity, by_width):
            for c in (a, b):
                if len(shortlist) >= limit:
                    break
                if id(c) not in chosen:
                    chosen.add(id(c))
                    shortlist.append(c)
        return shortlist

    # -- phase 2: validation ------------------------------------------------------

    def _snapshot_states(self, program, shortlist, start_state=None):
        """Replay, snapshotting each candidate's strided crossing states."""
        want = {c.ip: c for c in shortlist}
        counts = {c.ip: 0 for c in shortlist}
        snapshots = {c.ip: [] for c in shortlist}
        limit = self.config.recognizer_validate_states
        machine = self._machine_from(program, start_state)
        break_ips = set(want)
        budget = self.config.recognizer_window
        consumed = 0
        while consumed < budget:
            result = machine.run(max_instructions=budget - consumed,
                                 break_ips=break_ips)
            consumed += result.instructions
            if result.reason != STOP_BREAKPOINT:
                break
            ip = result.eip
            candidate = want[ip]
            index = counts[ip]
            counts[ip] += 1
            if index % candidate.stride == 0 \
                    and len(snapshots[ip]) < limit:
                snapshots[ip].append(bytes(machine.state.buf))
            if all(len(s) >= limit for s in snapshots.values()):
                break
        return snapshots, consumed

    def _validate(self, program, candidate, states):
        """Train an ensemble on the candidate's states; return accuracy.

        Accuracy is scored the way the engine will use predictions: a
        prediction counts as correct when it matches the true next state
        on the bits the following superstep actually *reads* (its cache
        dependency set), obtained by executing one real superstep under
        dependency tracking. Bits the superstep overwrites before reading
        — dead temporaries at the hyperplane — are rightly ignored.
        """
        if len(states) < 5:
            return 0.0
        # A short warmup leaves most snapshots available for scoring.
        config = self.config.replace(warmup_observations=3)
        tracker = ExcitationTracker(None, config)
        views = []
        for buf in states:
            view = tracker.observe(buf)
            if view is not None:
                views.append(view)
        if len(views) < 3:
            return 0.0
        mask = self._dependency_bit_mask(program, candidate, states, tracker)

        ensemble = default_ensemble(config)
        results = []
        for view in views:
            outcome = ensemble.observe(view)
            if not outcome.scored:
                continue
            errors = outcome.ensemble_bits != outcome.actual_bits
            if mask is not None:
                keep = mask[mask < len(errors)]
                errors = errors[keep]
            results.append(not errors.any())
        if not results:
            return 0.0
        # Score the steady state: the RWMA needs a few observations to
        # identify the right expert per bit, and what matters for
        # speculation is accuracy after that burn-in.
        steady = results[len(results) // 2:]
        return sum(steady) / len(steady)

    def _candidate_budget(self, candidate):
        by_mean = (candidate.mean_gap * candidate.stride
                   * self.config.speculation_budget_factor)
        by_max = candidate.max_gap * candidate.stride * 6.0
        return int(max(by_mean, by_max)) + 256

    def _dependency_bit_mask(self, program, candidate, states, tracker):
        """Target-bit indices read by one real superstep, or None."""
        budget = self._candidate_budget(candidate)
        probe = run_speculation(
            program.make_context(fast_path=self.config.fast_path),
            states[len(states) // 2], candidate.ip,
            candidate.stride, budget)
        if probe.entry is None:
            return None
        word_pos = {int(w): i
                    for i, w in enumerate(tracker.target_words.tolist())}
        bits = []
        for idx in probe.entry.start_indices.tolist():
            word = idx & ~3
            pos = word_pos.get(word)
            if pos is not None:
                base = pos * 32 + (idx - word) * 8
                bits.extend(range(base, base + 8))
        if not bits:
            return None
        return np.array(sorted(set(bits)), dtype=np.int64)

    # -- selection -------------------------------------------------------------------

    def find(self, program, start_state=None):
        """Search for the best recognized IP for ``program``.

        ``start_state`` recognizes from an arbitrary point on the
        trajectory instead of the program's initial state — used when a
        phase change kills the previous RIP mid-run.

        Adaptive: when no shortlisted candidate validates as predictable
        — typically because an input-setup phase dominated the window and
        the steady-state loop has too few occurrences yet — the window
        doubles and the search repeats, up to
        ``recognizer_max_window_doublings`` times.
        """
        mid_run = start_state is not None
        result = self._find_once(program, start_state=start_state,
                                 mid_run=mid_run)
        doublings = 0
        while (result is None
               and doublings < self.config.recognizer_max_window_doublings):
            doublings += 1
            self.config = self.config.replace(
                recognizer_window=self.config.recognizer_window * 2)
            result = self._find_once(program, start_state=start_state,
                                     mid_run=mid_run)
        if result is None:
            result = self._find_once(program, accept_any=True,
                                     start_state=start_state,
                                     mid_run=mid_run)
        return result

    def _hint_filter(self, program, candidates):
        """Restrict candidates to compiler-hinted addresses (§2.1).

        Hybrid recognition: the compiler says *where* loops and functions
        live; the online validation still decides *which* of them is
        predictable and profitable. Falls back to the full candidate set
        if no hinted address survived the occurrence filters.
        """
        if not self.config.use_compiler_hints:
            return candidates
        hints = getattr(program, "hints", None)
        if not hints:
            return candidates
        hinted_addresses = hints.all_addresses()
        hinted = [c for c in candidates if c.ip in hinted_addresses]
        return hinted or candidates

    def _find_once(self, program, accept_any=False, start_state=None,
                   mid_run=False):
        trace, positions = self._collect_positions(program, start_state)
        candidates = self._hint_filter(
            program, self._candidate_stats(positions, len(trace)))
        if not candidates:
            if not accept_any:
                return None
            raise EngineError(
                "recognizer found no candidate IPs in a window of %d "
                "instructions (program too short or too irregular)"
                % self.config.recognizer_window)

        shortlist = self._shortlist(candidates)

        snapshots, replay_instructions = self._snapshot_states(
            program, shortlist, start_state)
        best = None
        for candidate in shortlist:
            candidate.accuracy = self._validate(program, candidate,
                                                snapshots[candidate.ip])
            # Utility: predicted-jump coverage — accuracy times the span
            # of trajectory this IP's supersteps tile within the search
            # window (the paper's "instructions between the state from
            # which a prediction was made and the predicted state" proxy,
            # summed over the window). An accurate IP that stops
            # recurring (e.g. an input-setup loop) scores low because its
            # occurrences cover only a prefix of the window.
            candidate.utility = (candidate.accuracy
                                 * candidate.mean_gap * candidate.occurrences)
            if mid_run:
                # Re-recognition after a phase death: the loop running
                # *right now* is what matters. A candidate that only
                # begins later in the window belongs to a future phase
                # (we will re-recognize when we get there), and a
                # candidate that dies mid-window is fine — phase death
                # is exactly what triggered us.
                starts_soon = candidate.first_pos <= max(
                    4 * candidate.max_gap * candidate.stride,
                    len(trace) // 8)
                if not starts_soon:
                    candidate.utility *= 0.02
            elif not candidate.alive:
                candidate.utility *= 0.05
            candidate.validated = True
            if best is None or candidate.utility > best.utility:
                best = candidate
        if best is None or best.utility <= 0.0 \
                or (not best.alive and not accept_any and not mid_run):
            # A dead winner means the window mostly saw a finished phase;
            # let the adaptive search widen the window.
            if not accept_any:
                return None
            # Final fallback: the most regular, widest candidate;
            # prediction may still improve as more states are observed.
            if best is None or best.utility <= 0.0:
                best = shortlist[0]

        # Convergence is the trajectory span the search had to observe;
        # in the architecture the candidate validation runs on spare
        # cores against the live trajectory, so the snapshot replay is an
        # implementation artifact and is reported separately.
        converge = len(trace)
        return RecognizedIP(best.ip, best.stride, best.mean_gap, converge,
                            shortlist, search_instructions=len(trace)
                            + replay_instructions, max_gap=best.max_gap,
                            training_states=snapshots.get(best.ip, ()))

    # -- memoization variant ---------------------------------------------------

    def find_for_memoization(self, program):
        """Search for the IP whose states *recur* most profitably.

        Single-core LASC (Figure 6, right) gains nothing from
        predictability — it never predicts. What pays is an IP whose
        dependency-projected states repeat, so cached past supersteps
        match again (generalized memoization). Candidates are scored by
        recurrence rate instead of prediction accuracy.
        """
        trace, positions = self._collect_positions(program)
        candidates = self._hint_filter(
            program, self._candidate_stats(positions, len(trace)))
        if not candidates:
            raise EngineError(
                "recognizer found no candidate IPs in a window of %d "
                "instructions" % self.config.recognizer_window)
        shortlist = self._shortlist(candidates)
        snapshots, replay_instructions = self._snapshot_states(program,
                                                               shortlist)
        best = None
        for candidate in shortlist:
            candidate.accuracy = self._validate_recurrence(
                program, candidate, snapshots[candidate.ip])
            candidate.utility = (candidate.accuracy
                                 * candidate.mean_gap * candidate.stride)
            candidate.validated = True
            if best is None or candidate.utility > best.utility:
                best = candidate
        if best is None or best.utility <= 0.0:
            best = min(shortlist, key=lambda c: c.mean_gap * c.stride)
        return RecognizedIP(best.ip, best.stride, best.mean_gap, len(trace),
                            shortlist, search_instructions=len(trace)
                            + replay_instructions, max_gap=best.max_gap)

    def _validate_recurrence(self, program, candidate, states):
        """Fraction of dependency-projected states seen before."""
        if len(states) < 6:
            return 0.0
        budget = self._candidate_budget(candidate)
        context = program.make_context(fast_path=self.config.fast_path)
        # Probe a few states; keep the tightest dependency set (probes
        # that straddle a loop exit drag in unrelated outer state).
        best_indices = None
        for pick in (len(states) // 4, len(states) // 2,
                     3 * len(states) // 4):
            probe = run_speculation(context, states[pick], candidate.ip,
                                    candidate.stride, budget)
            if probe.entry is None:
                continue
            indices = probe.entry.start_indices
            if best_indices is None or len(indices) < len(best_indices):
                best_indices = indices
        if best_indices is None:
            return 0.0
        seen = set()
        repeats = 0
        for buf in states:
            arr = np.frombuffer(buf, dtype=np.uint8)
            key = arr[best_indices].tobytes()
            if key in seen:
                repeats += 1
            else:
                seen.add(key)
        return repeats / max(1, len(states) - 1)
