"""Engine and learning configuration."""


class EngineConfig:
    """All tunables for the LASC components in one place.

    The defaults correspond to the paper's described behavior, scaled to
    this repo's smaller workloads (the paper ignores predictions closer
    than 1e4 instructions; our benchmarks run ~1e4x fewer instructions,
    so the default ``min_superstep_instructions`` is proportionally
    smaller). Benchmarks override per-workload knobs explicitly.
    """

    def __init__(self,
                 # -- excitation tracking --------------------------------
                 warmup_observations=6,
                 excitation_threshold=1,
                 grow_targets=True,
                 growth_batch_observations=16,
                 # -- recognizer -----------------------------------------
                 recognizer_window=60_000,
                 recognizer_max_window_doublings=3,
                 recognizer_max_candidates=8,
                 recognizer_validate_states=24,
                 recognizer_min_occurrences=4,
                 min_superstep_instructions=800,
                 use_compiler_hints=False,
                 # -- predictors -----------------------------------------
                 logistic_learning_rates=(0.5, 0.05),
                 linreg_degree=1,
                 enable_trend_predictor=False,
                 rwma_beta=0.3,
                 rwma_randomized=False,
                 seed=0,
                 # -- allocator / speculation ----------------------------
                 converge_supersteps_charge=None,
                 max_rollout=None,
                 speculation_budget_factor=4.0,
                 # Near-zero: with idle workers the opportunity cost of a
                 # low-probability speculation is nil, so expected-utility
                 # maximization prunes only the hopeless. Cumulative
                 # chain probabilities decay geometrically with rank, so
                 # any sizable threshold silently caps pipeline depth.
                 min_dispatch_probability=1e-9,
                 # -- memoization mode -----------------------------------
                 memo_block=8,
                 # -- cache ------------------------------------------------
                 cache_capacity_bytes=None,
                 # -- interpreter tier -------------------------------------
                 # None follows REPRO_FAST_PATH (on by default); False
                 # forces the reference interpreter everywhere.
                 fast_path=None):
        self.warmup_observations = warmup_observations
        self.excitation_threshold = excitation_threshold
        self.grow_targets = grow_targets
        self.growth_batch_observations = growth_batch_observations
        self.recognizer_window = recognizer_window
        self.recognizer_max_window_doublings = recognizer_max_window_doublings
        self.recognizer_max_candidates = recognizer_max_candidates
        self.recognizer_validate_states = recognizer_validate_states
        self.recognizer_min_occurrences = recognizer_min_occurrences
        # Restrict the recognizer's candidate IPs to the compiler's
        # loop-header/function-entry hints when the program carries them
        # (§2.1: importing static analysis as priors). Hybrid mode: the
        # online validation still decides among the hinted candidates.
        self.use_compiler_hints = use_compiler_hints
        self.min_superstep_instructions = min_superstep_instructions
        # How much simulated time the recognizer search occupies before
        # speculation may begin, expressed in supersteps. None charges the
        # recognizer's real observation span. The paper's measured
        # converge/jump ratio is ~2 (Table 1: 2.3e7 converge vs 1.2e7
        # jump): its search ran on thousands of spare cores watching the
        # live trajectory, while ours validates candidates sequentially
        # in Python — figure generation sets 2.0 for paper parity and
        # EXPERIMENTS.md reports both charges.
        self.converge_supersteps_charge = converge_supersteps_charge
        self.logistic_learning_rates = tuple(logistic_learning_rates)
        self.linreg_degree = linreg_degree
        # Extension (off by default — the paper's ensemble is exactly
        # the four algorithms of §4.4.2): add the trend predictor for
        # constant-second-difference sequences.
        self.enable_trend_predictor = enable_trend_predictor
        self.rwma_beta = rwma_beta
        self.rwma_randomized = rwma_randomized
        self.seed = seed
        self.max_rollout = max_rollout
        self.speculation_budget_factor = speculation_budget_factor
        self.min_dispatch_probability = min_dispatch_probability
        self.memo_block = memo_block
        self.cache_capacity_bytes = cache_capacity_bytes
        self.fast_path = fast_path

    def replace(self, **kwargs):
        """A copy with the given fields overridden."""
        fields = dict(self.__dict__)
        fields.update(kwargs)
        return EngineConfig(**fields)

    def __repr__(self):
        inner = ", ".join("%s=%r" % kv for kv in sorted(self.__dict__.items()))
        return "EngineConfig(%s)" % inner
