"""LASC: the learning-based implementation of the ASC architecture.

This package is the paper's primary contribution: the recognizer that
finds predictable instruction-pointer hyperplanes, the online predictor
ensemble, the regret-minimizing allocator, the dependency-keyed
trajectory cache, and the engines (sequential, parallel-speculative, and
single-core memoizing) that tie them together over the TBFS substrate.
"""

from repro.core.cache_store import CacheSnapshot, SharedCacheStore
from repro.core.config import EngineConfig
from repro.core.excitation import ExcitationTracker, ObservationView
from repro.core.recognizer import Recognizer, RecognizedIP
from repro.core.trajectory_cache import CacheEntry, TrajectoryCache
from repro.core.engine import (
    SequentialResult,
    ParallelResult,
    run_sequential,
    ParallelEngine,
    MemoizingEngine,
)
from repro.core.predictors import (
    Predictor,
    MeanPredictor,
    WeathermanPredictor,
    LogisticPredictor,
    LinearRegressionPredictor,
    PredictorEnsemble,
    default_ensemble,
)

__all__ = [
    "CacheSnapshot",
    "EngineConfig",
    "SharedCacheStore",
    "ExcitationTracker",
    "ObservationView",
    "Recognizer",
    "RecognizedIP",
    "CacheEntry",
    "TrajectoryCache",
    "SequentialResult",
    "ParallelResult",
    "run_sequential",
    "ParallelEngine",
    "MemoizingEngine",
    "Predictor",
    "MeanPredictor",
    "WeathermanPredictor",
    "LogisticPredictor",
    "LinearRegressionPredictor",
    "PredictorEnsemble",
    "default_ensemble",
]
