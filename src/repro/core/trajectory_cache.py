"""The trajectory cache: sparse, dependency-keyed start/end state pairs.

Each entry records a completed (speculative or past) execution as two
sparse projections (§4.2): the *start* projection over bytes the
execution read before writing (statuses READ / WRITTEN-AFTER-READ in the
dependency vector) and the *end* projection over bytes it wrote
(WRITTEN / WRITTEN-AFTER-READ). A running computation whose current
state agrees with an entry's start projection — on those bytes only —
may fast-forward by applying the end projection, skipping
``entry.length`` instructions.

Entries are bucketed by the instruction pointer they begin at and grouped
by their dependency index set, so a lookup is: project the current state
onto each group's indices and probe a hash table — O(dependency bytes),
never O(entries).

``ready_time`` models the distributed setting: an entry inserted by a
speculative worker is only visible to queries issued after the worker
finished (simulated time).
"""

import numpy as np

from repro.errors import EngineError
from repro.machine.depvec import DEP_READ, DEP_WAR, DEP_WRITTEN


class CacheEntry:
    """One cached trajectory segment."""

    __slots__ = ("rip", "start_indices", "start_values", "end_indices",
                 "end_values", "length", "occurrences", "ready_time",
                 "halted")

    def __init__(self, rip, start_indices, start_values, end_indices,
                 end_values, length, occurrences=1, ready_time=0.0,
                 halted=False):
        self.rip = rip
        self.start_indices = start_indices  # np.int64 vector indices
        self.start_values = start_values  # np.uint8 expected bytes
        self.end_indices = end_indices
        self.end_values = end_values
        self.length = length  # instructions this entry fast-forwards over
        self.occurrences = occurrences  # RIP occurrences spanned
        self.ready_time = ready_time
        self.halted = halted

    @classmethod
    def from_execution(cls, rip, dep, start_buf, end_buf, length,
                       occurrences=1, ready_time=0.0, halted=False):
        """Build an entry from a finished execution's dependency vector."""
        g = np.frombuffer(bytes(dep.buf), dtype=np.uint8)
        start_mask = (g == DEP_READ) | (g == DEP_WAR)
        end_mask = (g == DEP_WRITTEN) | (g == DEP_WAR)
        start_indices = np.nonzero(start_mask)[0]
        end_indices = np.nonzero(end_mask)[0]
        start_arr = np.frombuffer(bytes(start_buf), dtype=np.uint8)
        end_arr = np.frombuffer(bytes(end_buf), dtype=np.uint8)
        return cls(rip, start_indices, start_arr[start_indices].copy(),
                   end_indices, end_arr[end_indices].copy(), length,
                   occurrences=occurrences, ready_time=ready_time,
                   halted=halted)

    # -- matching and application ------------------------------------------------

    def matches(self, buf):
        """Does the current state agree on every dependency byte?"""
        arr = np.frombuffer(buf, dtype=np.uint8)
        return bool(np.array_equal(arr[self.start_indices],
                                   self.start_values))

    def apply(self, buf):
        """Fast-forward: write the end projection into ``buf`` in place."""
        arr = np.frombuffer(buf, dtype=np.uint8)
        if not arr.flags.writeable:
            raise EngineError("cannot apply entry to a read-only buffer")
        arr[self.end_indices] = self.end_values

    def with_ready_time(self, ready_time):
        return CacheEntry(self.rip, self.start_indices, self.start_values,
                          self.end_indices, self.end_values, self.length,
                          occurrences=self.occurrences,
                          ready_time=ready_time, halted=self.halted)

    # -- sizes ---------------------------------------------------------------------

    @property
    def start_bits(self):
        return 8 * len(self.start_indices)

    @property
    def end_bits(self):
        return 8 * len(self.end_indices)

    def size_bytes(self):
        """Approximate stored size (sparse indices + values, both sides)."""
        return 5 * (len(self.start_indices) + len(self.end_indices)) + 48

    def __repr__(self):
        return ("CacheEntry(rip=0x%x, deps=%dB, writes=%dB, length=%d, "
                "ready=%.6f)" % (self.rip, len(self.start_indices),
                                 len(self.end_indices), self.length,
                                 self.ready_time))


class _DepGroup:
    """Entries sharing one (rip, dependency index set)."""

    __slots__ = ("indices", "table")

    def __init__(self, indices):
        self.indices = indices
        self.table = {}  # projection bytes -> list of entries (length desc)


class TrajectoryCache:
    """Distributed trajectory cache (simulated as one index).

    ``capacity_bytes`` optionally bounds total stored size with FIFO
    eviction — the paper's "more memory stores more cache entries" axis.
    """

    def __init__(self, capacity_bytes=None):
        self.capacity_bytes = capacity_bytes
        self._groups = {}  # rip -> {indices key: _DepGroup}
        self._order = []  # insertion order for eviction: (rip, key, proj)
        # Semantic quarantine (verify subsystem): (rip, indices key) ->
        # clean audits still required before the group is re-admitted
        # (None = never re-admit). A quarantined group is invisible to
        # lookups but keeps its entries, so re-admission is instant.
        self._quarantined = {}
        self.total_bytes = 0
        self.n_entries = 0
        self.n_inserted = 0
        self.n_evicted = 0
        self.n_quarantined = 0  # corrupt entries skipped during preload
        self.n_groups_quarantined = 0  # semantic quarantines (cumulative)
        self.n_groups_readmitted = 0  # quarantined groups re-admitted

    def insert(self, entry):
        """Add an entry; keeps multiple lengths per identical start."""
        key = entry.start_indices.tobytes()
        groups = self._groups.setdefault(entry.rip, {})
        group = groups.get(key)
        if group is None:
            group = _DepGroup(entry.start_indices)
            groups[key] = group
        projection = entry.start_values.tobytes()
        bucket = group.table.setdefault(projection, [])
        bucket.append(entry)
        bucket.sort(key=lambda e: -e.length)
        self._order.append((entry.rip, key, projection))
        self.total_bytes += entry.size_bytes()
        self.n_entries += 1
        self.n_inserted += 1
        self._evict_if_needed()

    def _evict_if_needed(self):
        if self.capacity_bytes is None:
            return
        while self.total_bytes > self.capacity_bytes and self._order:
            rip, key, projection = self._order.pop(0)
            groups = self._groups.get(rip)
            if not groups:
                continue
            group = groups.get(key)
            if not group:
                continue
            bucket = group.table.get(projection)
            if not bucket:
                continue
            victim = bucket.pop()  # shortest first
            if not bucket:
                del group.table[projection]
            self.total_bytes -= victim.size_bytes()
            self.n_entries -= 1
            self.n_evicted += 1

    def lookup(self, rip, buf, now=None):
        """Longest ready entry whose start projection matches ``buf``.

        This is the paper's query/max-reduce: every node reports the
        length of its longest matching trajectory and the main thread
        fetches the winner. ``now`` filters entries by ``ready_time``.
        """
        entry, __ = self.lookup_classified(rip, buf, now)
        return entry

    def lookup_classified(self, rip, buf, now=None):
        """Like :meth:`lookup`, also reporting near misses.

        Returns ``(entry, late_match)``: ``late_match`` is True when a
        matching entry exists whose speculative worker has not finished
        by ``now`` — a pipeline stall rather than a misprediction, the
        distinction §5.4's scaling analysis turns on.
        """
        groups = self._groups.get(rip)
        if not groups:
            return None, False
        arr = np.frombuffer(buf, dtype=np.uint8)
        best = None
        late = False
        for key, group in groups.items():
            if self._quarantined and (rip, key) in self._quarantined:
                continue
            projection = arr[group.indices].tobytes()
            bucket = group.table.get(projection)
            if not bucket:
                continue
            for entry in bucket:  # sorted by length desc
                if now is not None and entry.ready_time > now:
                    late = True
                    continue
                if best is None or entry.length > best.length:
                    best = entry
                break
        return best, late

    # -- semantic quarantine (verify subsystem) ------------------------------

    @staticmethod
    def group_key(entry):
        """The ``(rip, dep-index-set)`` identity the auditor quarantines."""
        return (entry.rip, entry.start_indices.tobytes())

    def quarantine_group(self, rip, indices_key, readmit_after=None):
        """Hide one dependency group from lookups.

        ``readmit_after`` is the number of *clean* audits
        (:meth:`note_clean_audit`) after which the group comes back;
        ``None`` quarantines it for the rest of the run. Idempotent —
        re-quarantining resets the decay counter.
        """
        key = (rip, indices_key)
        if key not in self._quarantined:
            self.n_groups_quarantined += 1
        self._quarantined[key] = readmit_after

    def is_quarantined(self, rip, indices_key):
        return (rip, indices_key) in self._quarantined

    @property
    def quarantined_groups(self):
        """Currently quarantined group count (gauge)."""
        return len(self._quarantined)

    def note_clean_audit(self):
        """Decay every quarantine by one clean audit; re-admit at zero.

        Returns the number of groups re-admitted by this decay step.
        """
        if not self._quarantined:
            return 0
        readmitted = []
        for key, remaining in self._quarantined.items():
            if remaining is None:
                continue
            remaining -= 1
            if remaining <= 0:
                readmitted.append(key)
            else:
                self._quarantined[key] = remaining
        for key in readmitted:
            del self._quarantined[key]
        self.n_groups_readmitted += len(readmitted)
        return len(readmitted)

    def stats_dict(self):
        """Uniform counter snapshot for ``--json`` reports."""
        return {
            "n_entries": self.n_entries,
            "n_inserted": self.n_inserted,
            "n_evicted": self.n_evicted,
            "n_quarantined": self.n_quarantined,
            "total_bytes": self.total_bytes,
            "n_groups_quarantined": self.n_groups_quarantined,
            "n_groups_readmitted": self.n_groups_readmitted,
            "quarantined_groups": len(self._quarantined),
        }

    def entries(self):
        """Iterate over every stored entry (persistence, diagnostics)."""
        for groups in self._groups.values():
            for group in groups.values():
                for bucket in group.table.values():
                    yield from bucket

    def __len__(self):
        return self.n_entries

    def __repr__(self):
        return "<TrajectoryCache entries=%d bytes=%d>" % (self.n_entries,
                                                          self.total_bytes)
