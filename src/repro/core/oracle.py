"""Oracle prediction: the paper's "LASC+oracle" configuration (§5.4).

The oracle run "holds everything else constant — including the
recognizer and allocator policies as well as the times to compute
predictions, speculative trajectories and cache queries — while ensuring
that the prediction for any particular state is correct." The gap
between oracle and actual scaling isolates prediction accuracy from
implementation overheads.

:class:`TrajectoryRecord` performs one instrumented sequential pass,
recording every superstep-boundary state's projection; it doubles as the
reference run that provides total instruction counts and superstep
statistics for scaling denominators and Table 1.
"""

from repro.core.allocator import RolloutStep
from repro.core.excitation import ExcitationTracker
from repro.machine.executor import STOP_BREAKPOINT


class TrajectoryRecord:
    """Ground truth from one sequential pass over the program.

    Attributes
    ----------
    total_instructions:
        Full sequential instruction count to halt.
    boundary_positions:
        Instruction index of each superstep boundary (every ``stride``-th
        RIP occurrence).
    views:
        ``(boundary_index, word_values, digest, phase_index)`` for each
        boundary at which the excitation tracker was warmed up.
    """

    def __init__(self, program, recognized, config,
                 max_instructions=500_000_000):
        self.program = program
        self.recognized = recognized
        #: One RecognizedIP per program phase. When a phase's RIP stops
        #: occurring (a drought — §4.4.1's "change in program behavior
        #: renders the current RIP useless"), the recognizer re-runs from
        #: the current state and a new phase begins; the parallel engine
        #: detects droughts with the same rule and follows this plan.
        self.phases = [recognized]
        tracker = ExcitationTracker(program.layout, config)
        machine = program.make_machine()
        phase = recognized

        self.boundary_positions = []
        self.views = []
        self._digest_to_pos = {}
        executed = 0
        crossings = 0

        from repro.core.recognizer import Recognizer
        from repro.errors import EngineError

        while executed < max_instructions:
            budget = min(max_instructions - executed, phase.drought_limit())
            result = machine.run(max_instructions=budget,
                                 break_ips=frozenset((phase.ip,)))
            executed += result.instructions
            if machine.halted:
                break
            if result.reason != STOP_BREAKPOINT:
                # Drought: the current RIP died. Recognize the new phase
                # from this very state; give up only if nothing is found
                # (program tail) and run plainly to the end.
                try:
                    phase = Recognizer(config).find(
                        program, start_state=bytes(machine.state.buf))
                except EngineError:
                    tail = machine.run(
                        max_instructions=max_instructions - executed)
                    executed += tail.instructions
                    break
                self.phases.append(phase)
                tracker = ExcitationTracker(program.layout, config)
                crossings = 0
                continue
            crossings += 1
            if (crossings - 1) % phase.stride:
                continue
            boundary_index = len(self.boundary_positions)
            self.boundary_positions.append(executed)
            view = tracker.observe(machine.state.buf)
            if view is not None:
                digest = view.digest()
                self._digest_to_pos[digest] = len(self.views)
                self.views.append((boundary_index,
                                   view.word_values.copy(), digest,
                                   len(self.phases) - 1))
        self.total_instructions = executed
        self.halted = machine.halted
        self.n_boundaries = len(self.boundary_positions)

    @property
    def mean_superstep_instructions(self):
        """Average jump length between consecutive boundaries."""
        if len(self.boundary_positions) < 2:
            return float(self.total_instructions)
        first = self.boundary_positions[0]
        last = self.boundary_positions[-1]
        return (last - first) / (len(self.boundary_positions) - 1)

    def position_of(self, digest):
        return self._digest_to_pos.get(digest)


class OracleAllocator:
    """Drop-in for :class:`repro.core.allocator.Allocator` with perfect
    predictions taken from a :class:`TrajectoryRecord`."""

    def __init__(self, record, max_rollout):
        self.record = record
        self.max_rollout = max_rollout
        self.chain = []
        self.rebuilds = 0
        self.shifts = 0
        self.unknown_states = 0

    def advance(self, view):
        digest = view.digest()
        pos = self.record.position_of(digest)
        self.chain = []
        if pos is None:
            self.unknown_states += 1
            return
        views = self.record.views
        phase = views[pos][3]
        for offset in range(1, self.max_rollout + 1):
            nxt = pos + offset
            if nxt >= len(views):
                break
            __, word_values, next_digest, next_phase = views[nxt]
            if next_phase != phase:
                # A recognizer reset separates the phases: projections on
                # the far side live in a different target space and the
                # old RIP cannot fast-forward into them.
                break
            self.chain.append(RolloutStep(word_values, next_digest, 1.0))

    def probabilities(self):
        return [1.0] * len(self.chain)

    def dispatch_order(self, mean_jump, min_probability):
        return list(range(len(self.chain)))

    def reset(self):
        self.chain = []
