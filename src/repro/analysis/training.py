"""Sequential predictor training over a workload's RIP boundaries.

This is the paper's 1-core learning configuration: the main thread
executes, the excitation tracker and predictor ensemble observe each
recognized-IP state, and statistics accumulate. Table 2's error rates,
Figure 3's weight matrices, and Table 1's query sizes all come from this
single instrumented pass.
"""

from repro.core.excitation import ExcitationTracker
from repro.core.predictors.ensemble import default_ensemble
from repro.core.speculation import run_speculation
from repro.core.stats import PredictionStats
from repro.machine.diff import delta_size_bits
from repro.machine.executor import STOP_BREAKPOINT


class TrainingResult:
    """Artifacts of one sequential training pass."""

    def __init__(self, tracker, ensemble, prediction_stats, relevant_bits,
                 query_bits, boundaries):
        self.tracker = tracker
        self.ensemble = ensemble
        self.prediction_stats = prediction_stats
        self.relevant_bits = relevant_bits
        self.query_bits = query_bits  # delta-compressed sizes per boundary
        self.boundaries = boundaries

    @property
    def mean_query_bits(self):
        if not self.query_bits:
            return 0.0
        return sum(self.query_bits) / len(self.query_bits)


def _relevant_bits_from_entry(entry, tracker):
    word_pos = {int(w): i for i, w in
                enumerate(tracker.target_words.tolist())}
    bits = set()
    for idx in entry.start_indices.tolist():
        word = idx & ~3
        pos = word_pos.get(word)
        if pos is not None:
            base = pos * 32 + (idx - word) * 8
            bits.update(range(base, base + 8))
    return bits


def train_on_boundaries(context, max_boundaries=None, max_query_samples=32,
                        probe_count=3):
    """Run the workload sequentially, training the ensemble at each
    boundary; returns a :class:`TrainingResult`.

    ``relevant_bits`` is the union of dependency bits over ``probe_count``
    real superstep executions — the subset on which the paper scores a
    state prediction as correct ("state vectors need only match cache
    entries on the latter's dependencies").
    """
    program = context.workload.program
    config = context.config
    recognized = context.recognized
    rip = recognized.ip
    stride = recognized.stride
    break_ips = frozenset((rip,))
    budget = recognized.speculation_budget(config.speculation_budget_factor)

    tracker = ExcitationTracker(program.layout, config)
    ensemble = default_ensemble(config)
    pstats = PredictionStats(ensemble.expert_names)
    machine = program.make_machine()
    context_vm = machine.context

    relevant_bits = set()
    probes_done = 0
    query_bits = []
    prev_snapshot = None
    boundaries = 0
    crossings = 0
    guard = 500_000_000

    while True:
        stop = False
        for __ in range(stride):
            result = machine.run(max_instructions=guard, break_ips=break_ips)
            if result.reason != STOP_BREAKPOINT:
                stop = True
                break
        if stop:
            break
        crossings += stride
        boundaries += 1
        snapshot = bytes(machine.state.buf)
        if prev_snapshot is not None and len(query_bits) < max_query_samples:
            query_bits.append(delta_size_bits(prev_snapshot, snapshot))
        prev_snapshot = snapshot
        view = tracker.observe(snapshot)
        if view is not None:
            outcome = ensemble.observe(view)
            pstats.record(outcome)
            if probes_done < probe_count:
                probe = run_speculation(context_vm, snapshot, rip, stride,
                                        budget)
                probes_done += 1
                if probe.entry is not None:
                    relevant_bits |= _relevant_bits_from_entry(probe.entry,
                                                               tracker)
        if max_boundaries is not None and boundaries >= max_boundaries:
            break

    return TrainingResult(tracker, ensemble, pstats,
                          relevant_bits or None,
                          query_bits, boundaries)
