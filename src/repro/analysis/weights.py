"""Figure 3: final RWMA weight matrices.

Rows are the paper's four algorithms (instances of the same algorithm —
logistic regression at several learning rates — are summed), columns the
program's excited bits, cells the normalized weight the regret
minimizer assigned each algorithm for each bit.
"""

import numpy as np


#: Algorithm display order, matching the paper's figure.
ALGORITHM_ORDER = ("mean", "weatherman", "logistic", "linreg")


def _algorithm_of(instance_name):
    return instance_name.split("(")[0]


def make_weight_matrix(training_result):
    """Aggregate a trained ensemble's weights by algorithm.

    Returns ``(matrix, algorithms)``: matrix has one row per algorithm in
    :data:`ALGORITHM_ORDER` and one column per target bit, each column
    normalized to sum to 1.
    """
    ensemble = training_result.ensemble
    raw = ensemble.weight_matrix(normalized=False)
    algorithms = list(ALGORITHM_ORDER)
    matrix = np.zeros((len(algorithms), raw.shape[1]))
    for instance, row in zip(ensemble.expert_names, raw):
        algorithm = _algorithm_of(instance)
        matrix[algorithms.index(algorithm)] += row
    totals = matrix.sum(axis=0)
    totals[totals == 0] = 1.0
    return matrix / totals, algorithms


def render_weight_matrix(matrix, algorithms, max_columns=96):
    """ASCII heatmap of a weight matrix (darker = heavier weight)."""
    shades = " .:-=+*#%@"
    n_bits = matrix.shape[1]
    if n_bits > max_columns:
        # Downsample columns by averaging fixed-size groups.
        group = -(-n_bits // max_columns)
        pad = (-n_bits) % group
        padded = np.pad(matrix, ((0, 0), (0, pad)))
        matrix = padded.reshape(matrix.shape[0], -1, group).mean(axis=2)
    lines = []
    for algorithm, row in zip(algorithms, matrix):
        cells = "".join(
            shades[min(int(v * (len(shades) - 1) + 0.5), len(shades) - 1)]
            for v in row)
        lines.append("%-12s |%s|" % (algorithm, cells))
    return "\n".join(lines)
