"""Tables 1 and 2: recognizer statistics and prediction error rates."""

from repro.analysis.scaling import scaling_sweep
from repro.analysis.training import train_on_boundaries


def make_table1(contexts, training=None):
    """Recognizer statistics per benchmark (the paper's Table 1).

    ``contexts`` maps benchmark name to :class:`ExperimentContext`;
    ``training`` optionally maps name to a precomputed
    :class:`TrainingResult` (otherwise one is run here).

    Row semantics match the paper: total time and converge time in
    executed instructions (the paper's "cycles" are simulator
    instructions), average jump is the mean superstep, cache query size
    is the mean delta-compressed boundary-to-boundary state difference,
    lines of code counts the benchmark's C source, unique IP values
    counts distinct instruction addresses observed.
    """
    rows = {}
    for name, context in contexts.items():
        result = (training or {}).get(name)
        if result is None:
            result = train_on_boundaries(context)
        program = context.workload.program
        recognized = context.recognized
        rows[name] = {
            "total_instructions": context.record.total_instructions,
            "converge_instructions": recognized.search_instructions,
            "average_jump": context.record.mean_superstep_instructions,
            "state_vector_bits": program.layout.n_bits,
            "cache_query_bits": result.mean_query_bits,
            "lines_of_code": program.source_line_count,
            "unique_ip_values": program.unique_ip_count,
        }
    return rows


def make_table2(contexts, training=None, miss_rate_cores=32):
    """Prediction error rates and cache miss rates (the paper's Table 2).

    Error rates are state-level over dependency-relevant bits, measured
    on one core; the cache miss rate comes from a real engine run at
    ``miss_rate_cores`` cores on the scaled server platform.
    """
    rows = {}
    for name, context in contexts.items():
        result = (training or {}).get(name)
        if result is None:
            result = train_on_boundaries(context)
        pstats = result.prediction_stats
        relevant = result.relevant_bits
        points = scaling_sweep(context, [miss_rate_cores],
                               platform="server32",
                               collect_prediction_stats=False)
        run = points[0].result
        rows[name] = {
            "equal_weight_error_rate":
                pstats.equal_weight_error_rate(relevant),
            "hindsight_optimal_error_rate":
                pstats.hindsight_error_rate(relevant),
            "actual_error_rate": pstats.actual_error_rate(relevant),
            "total_predictions": pstats.total_predictions(),
            "incorrect_predictions": pstats.incorrect_predictions(relevant),
            "cache_miss_rate_32_cores": run.stats.miss_rate,
        }
    return rows
