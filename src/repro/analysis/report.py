"""Plain-text rendering of experiment outputs."""


def _format_value(value):
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return "%.3g" % value
        return "%.4g" % value
    return str(value)


def format_table(rows, title=None, row_order=None, column_order=None):
    """Render ``{column: {row_label: value}}`` as an aligned text table.

    ``rows`` maps column names (e.g. benchmark names) to dicts of row
    label -> value, mirroring the paper's tables (benchmarks across the
    top, statistics down the side).
    """
    columns = column_order or list(rows)
    labels = row_order or list(next(iter(rows.values())))
    label_width = max(len(label) for label in labels)
    widths = {c: max(len(c), max(len(_format_value(rows[c][label]))
                                 for label in labels))
              for c in columns}
    lines = []
    if title:
        lines.append(title)
    header = " " * label_width + "  " + "  ".join(
        c.rjust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for label in labels:
        cells = "  ".join(
            _format_value(rows[c][label]).rjust(widths[c]) for c in columns)
        lines.append(label.ljust(label_width) + "  " + cells)
    return "\n".join(lines)


def format_series(series, title=None, x_label="cores", y_label="scaling"):
    """Render named scaling series side by side.

    ``series`` maps a name to a list of
    :class:`repro.analysis.scaling.ScalingPoint`.
    """
    lines = []
    if title:
        lines.append(title)
    names = list(series)
    xs = sorted({p.n_cores for points in series.values() for p in points})
    widths = [max(len(name), 8) for name in names]
    header = x_label.rjust(6) + "  " + "  ".join(
        name.rjust(w) for name, w in zip(names, widths))
    lines.append(header)
    lines.append("-" * len(header))
    lookup = {name: {p.n_cores: p.scaling for p in points}
              for name, points in series.items()}
    for x in xs:
        cells = []
        for name, w in zip(names, widths):
            value = lookup[name].get(x)
            cells.append(("%.2f" % value if value is not None else "-")
                         .rjust(w))
        lines.append(str(x).rjust(6) + "  " + "  ".join(cells))
    return "\n".join(lines)
