"""Scaling experiments: the machinery behind Figures 4, 5, and 6.

:class:`ExperimentContext` bundles everything shareable across a
core-count sweep of one workload — the recognized IP, the ground-truth
trajectory record, the workload-scaled cost model, and the speculative
execution memo (deterministic executions keyed by start-state digest).
Sharing them makes a 12-point sweep cost roughly one program execution
of Python time instead of twelve.
"""

from repro.bench.workload import PAPER_SUPERSTEP_SECONDS
from repro.cluster.costmodel import CostModel
from repro.cluster.topology import bluegene_p, laptop1, server32
from repro.core.engine import MemoizingEngine, ParallelEngine
from repro.core.oracle import TrajectoryRecord
from repro.core.recognizer import Recognizer

#: Default paper-parity charge for recognizer convergence (Table 1 shows
#: converge ~= 2 average jumps on Ising/2mm).
DEFAULT_CONVERGE_CHARGE = 2.0


class ExperimentContext:
    """Shared state for all runs of one workload."""

    def __init__(self, workload, converge_charge=DEFAULT_CONVERGE_CHARGE,
                 memoization=False):
        self.workload = workload
        self.config = workload.config.replace(
            converge_supersteps_charge=converge_charge)
        recognizer = Recognizer(self.config)
        if memoization:
            self.recognized = recognizer.find_for_memoization(
                workload.program)
        else:
            self.recognized = recognizer.find(workload.program)
        self.record = (None if memoization
                       else TrajectoryRecord(workload.program,
                                             self.recognized, self.config))
        self.spec_memo = {}
        self.cost_model = self._scaled_cost_model()

    def _scaled_cost_model(self):
        """Scale fixed costs to this workload's superstep length.

        The paper's overhead constants were measured against ~5.2-second
        supersteps (1.2e7 instructions at 2.3 MIPS); our scaled-down
        benchmarks keep every overhead:superstep *ratio* identical by
        scaling the constants with the measured superstep.
        """
        superstep_seconds = self.recognized.superstep_instructions / 2.3e6
        factor = superstep_seconds / PAPER_SUPERSTEP_SECONDS
        return CostModel().scaled(factor)

    @property
    def total_instructions(self):
        if self.record is not None:
            return self.record.total_instructions
        return None


class ScalingPoint:
    """One (core count, scaling) measurement plus diagnostics."""

    def __init__(self, n_cores, scaling, result=None):
        self.n_cores = n_cores
        self.scaling = scaling
        self.result = result

    def __repr__(self):
        return "ScalingPoint(cores=%d, scaling=%.2f)" % (self.n_cores,
                                                         self.scaling)


def _platform(kind, n_cores, cost_model):
    if kind == "server32":
        return server32(n_cores, cost_model)
    if kind == "bluegene_p":
        return bluegene_p(n_cores, cost_model)
    raise ValueError("unknown platform kind %r" % (kind,))


def scaling_sweep(context, core_counts, platform="server32", oracle=False,
                  cycle_count=False, collect_prediction_stats=None):
    """Measure scaling across core counts.

    ``oracle=True`` gives the paper's "LASC+oracle" lines (perfect
    predictions, real costs); ``cycle_count=True`` gives the "cycle count
    scaling" lines (real predictions, zero prediction/lookup cost).
    """
    cost_model = context.cost_model
    if cycle_count:
        cost_model = cost_model.zero_overhead()
    points = []
    for n_cores in core_counts:
        engine = ParallelEngine(
            context.workload.program,
            _platform(platform, n_cores, cost_model),
            config=context.config,
            oracle=oracle,
            recognized=context.recognized,
            record=context.record,
            spec_memo=context.spec_memo,
            collect_prediction_stats=collect_prediction_stats)
        result = engine.run()
        points.append(ScalingPoint(n_cores, result.scaling, result))
    return points


def memoization_curve(context):
    """Single-core generalized-memoization run (Figure 6, right).

    Returns the :class:`repro.core.engine.MemoResult`, whose ``timeline``
    is the paper's scaling-vs-instructions curve.
    """
    engine = MemoizingEngine(
        context.workload.program,
        laptop1(context.cost_model),
        config=context.config,
        recognized=context.recognized)
    return engine.run()


def ideal_series(core_counts):
    """The y=x reference line."""
    return [ScalingPoint(n, float(n)) for n in core_counts]
