"""Experiment drivers: regenerate every table and figure in §5.

Each module produces plain data structures (rows, series) plus text
rendering, so the pytest-benchmark harness under ``benchmarks/`` and the
examples can share one implementation.
"""

from repro.analysis.scaling import (
    ExperimentContext,
    ScalingPoint,
    scaling_sweep,
    memoization_curve,
)
from repro.analysis.tables import make_table1, make_table2
from repro.analysis.weights import make_weight_matrix
from repro.analysis.report import format_table, format_series

__all__ = [
    "ExperimentContext",
    "ScalingPoint",
    "scaling_sweep",
    "memoization_curve",
    "make_table1",
    "make_table2",
    "make_weight_matrix",
    "format_table",
    "format_series",
]
