"""Worker supervision: health records, circuit breaking, degradation.

PR 2's pool had exactly one answer to a failing worker — kill it and
respawn it — and one answer to *repeated* failure: raise and abandon
the run. That is the respawn-storm shape this module removes. The
supervisor owns every lifecycle decision; the pool only executes them:

* every worker slot has a :class:`WorkerHealth` record (consecutive
  crash/timeout streak, lifetime counts, an EWMA of task latency);
* a slot whose streak reaches ``breaker_threshold`` trips a circuit
  breaker: it is **quarantined** (left empty — the pool shrinks)
  instead of respawned, and re-admitted only after an exponential
  backoff (``quarantine_backoff_seconds`` doubling per trip, capped);
  re-admission is *half-open* — one more failure re-trips immediately;
* respawns (including re-admissions) draw from a global budget
  (``respawn_limit``); once spent, failing slots are **retired**
  permanently rather than respawned — graceful shrink, never a storm;
* when live workers drop below ``min_active_workers``, the supervisor
  **degrades** the run: speculation is disabled and the engine keeps
  executing sequentially in-process (correctness never depended on the
  workers), keeping every trajectory-cache entry it has accumulated.
  Once capacity returns and ``degrade_cooldown_seconds`` passes,
  speculation is re-enabled mid-run.

Every event increments a :class:`~repro.runtime.stats.RuntimeStats`
counter so chaos runs are machine-checkable.
"""

import time

#: Lifecycle directives returned by :meth:`Supervisor.note_failure`.
RESPAWN = "respawn"
QUARANTINE = "quarantine"
RETIRE = "retire"


class WorkerHealth:
    """Health record for one worker *slot* (survives respawns)."""

    __slots__ = ("slot", "consecutive_failures", "crashes", "timeouts",
                 "successes", "latency_ewma", "trips", "quarantined_until",
                 "retired")

    def __init__(self, slot):
        self.slot = slot
        self.consecutive_failures = 0
        self.crashes = 0
        self.timeouts = 0
        self.successes = 0
        self.latency_ewma = None
        self.trips = 0  # breaker trips since the last success
        self.quarantined_until = None
        self.retired = False

    @property
    def quarantined(self):
        return self.quarantined_until is not None

    def as_dict(self):
        return {"slot": self.slot, "successes": self.successes,
                "crashes": self.crashes, "timeouts": self.timeouts,
                "consecutive_failures": self.consecutive_failures,
                "trips": self.trips, "quarantined": self.quarantined,
                "retired": self.retired,
                "latency_ewma": self.latency_ewma}

    def __repr__(self):
        state = ("retired" if self.retired
                 else "quarantined" if self.quarantined else "active")
        return ("WorkerHealth(slot=%d, %s, ok=%d, crash=%d, timeout=%d)"
                % (self.slot, state, self.successes, self.crashes,
                   self.timeouts))


class Supervisor:
    """Policy brain for a :class:`~repro.runtime.pool.WorkerPool`.

    The pool reports events (success, crash, timeout) and asks three
    questions: what to do with a failed slot (:meth:`note_failure`),
    which quarantined slots may come back (:meth:`due_readmissions` +
    :meth:`authorize_readmission`), and whether speculation is
    currently allowed at all (:meth:`speculation_allowed`). ``clock``
    is injectable so the breaker/backoff logic is unit-testable
    without sleeping.
    """

    def __init__(self, config, stats, clock=time.monotonic):
        self.config = config
        self.stats = stats
        self._clock = clock
        self._health = {}
        self.respawns = 0  # global budget spent (respawns + readmissions)
        self._degraded = False
        self._reenable_at = None

    # -- health records ------------------------------------------------------

    def health(self, slot):
        record = self._health.get(slot)
        if record is None:
            record = self._health[slot] = WorkerHealth(slot)
        return record

    def health_snapshot(self):
        return [self._health[slot].as_dict()
                for slot in sorted(self._health)]

    # -- event ingestion -----------------------------------------------------

    def note_success(self, slot, duration):
        """A well-formed response arrived (any status): the worker is
        healthy. Closes the breaker and resets the backoff ladder."""
        record = self.health(slot)
        record.successes += 1
        record.consecutive_failures = 0
        record.trips = 0
        if record.latency_ewma is None:
            record.latency_ewma = duration
        else:
            record.latency_ewma += 0.3 * (duration - record.latency_ewma)

    def note_failure(self, slot, kind):
        """A crash or deadline kill on ``slot``; returns a directive.

        ``kind`` is ``"crash"`` or ``"timeout"``. The directive is one
        of :data:`RESPAWN` (replace it now), :data:`QUARANTINE` (leave
        the slot empty until backoff expires), or :data:`RETIRE` (the
        respawn budget is spent; shrink the pool permanently).
        """
        record = self.health(slot)
        record.consecutive_failures += 1
        if kind == "timeout":
            record.timeouts += 1
        else:
            record.crashes += 1
        if record.consecutive_failures >= self.config.breaker_threshold:
            record.trips += 1
            backoff = min(
                self.config.quarantine_backoff_seconds
                * (2 ** (record.trips - 1)),
                self.config.quarantine_backoff_max_seconds)
            record.quarantined_until = self._clock() + backoff
            self.stats.breaker_trips += 1
            self.stats.workers_quarantined += 1
            return QUARANTINE
        if self.respawns >= self.config.respawn_limit:
            record.retired = True
            self.stats.workers_retired += 1
            return RETIRE
        self.respawns += 1
        return RESPAWN

    # -- quarantine lifecycle ------------------------------------------------

    def due_readmissions(self):
        """Slots whose quarantine backoff has expired."""
        now = self._clock()
        return [record.slot for record in self._health.values()
                if record.quarantined and not record.retired
                and now >= record.quarantined_until]

    def authorize_readmission(self, slot):
        """Spend respawn budget to bring a quarantined slot back.

        Returns True when the pool should spawn a fresh worker there.
        The slot comes back *half-open*: its failure streak is primed
        one short of the threshold, so a single failure re-trips the
        breaker (with a doubled backoff — ``trips`` is preserved until
        a success closes the breaker).
        """
        record = self.health(slot)
        if record.retired or not record.quarantined:
            return False
        if self.respawns >= self.config.respawn_limit:
            record.retired = True
            record.quarantined_until = None
            self.stats.workers_retired += 1
            self.stats.workers_quarantined -= 1
            return False
        self.respawns += 1
        record.quarantined_until = None
        record.consecutive_failures = max(
            0, self.config.breaker_threshold - 1)
        self.stats.workers_readmitted += 1
        self.stats.workers_quarantined -= 1
        return True

    # -- degradation ladder --------------------------------------------------

    def speculation_allowed(self, active_count, parked=0):
        """May the engine dispatch speculations right now?

        Full pool → shrunken pool → sequential → re-enable: below the
        ``min_active_workers`` floor the run degrades to in-process
        sequential execution; once capacity returns, speculation stays
        off for ``degrade_cooldown_seconds`` more (so a flapping pool
        cannot thrash the scheduler), then re-enables.

        ``parked`` counts slots the autoscaler shrank *on purpose*.
        Capacity that was chosen away is not a failure: dispatch still
        stops below the floor, but without degradation accounting or
        cooldown debt — the moment the policy regrows the pool,
        speculation resumes at the very next boundary.
        """
        floor = max(1, self.config.min_active_workers)
        now = self._clock()
        if active_count < floor:
            if active_count + parked >= floor:
                return False
            if not self._degraded:
                self._degraded = True
                self.stats.pool_degradations += 1
            self._reenable_at = None
            return False
        if self._degraded:
            if self._reenable_at is None:
                self._reenable_at = now + self.config.degrade_cooldown_seconds
            if now < self._reenable_at:
                return False
            self._degraded = False
            self._reenable_at = None
            self.stats.speculation_reenabled += 1
        return True

    @property
    def degraded(self):
        return self._degraded

    def __repr__(self):
        return ("Supervisor(respawns=%d/%d, degraded=%s, slots=%d)"
                % (self.respawns, self.config.respawn_limit,
                   self._degraded, len(self._health)))
