"""Utility-driven elastic worker autoscaling.

The paper's economic argument (§4.5.2) prices speculation in cores: a
speculative worker earns its keep only while the expected utility of
the allocator chain — jump length x probability of use — covers the
cost of running it. The CLI's ``--workers N`` freezes that trade for a
whole run, which is exactly wrong at the two ends of the cache
lifecycle: a cold run pays N cores of overhead for speculations that
rarely land (``BENCH_parallel.json`` shows cold legs *losing*
wall-clock at every static N), and a warm phase-changing run wants
capacity back the moment the recognized RIP regains utility.

An :class:`Autoscaler` closes the loop online. The engine samples it at
every superstep boundary with :class:`AutoscaleSignals` — counters the
run already computes: allocator expected utility, cache hit rate,
waste (shipped-but-unused entries), dispatch backpressure, queue
occupancy. The policy answers with a target worker count; the engine
applies it through :meth:`WorkerPool.resize`, which grows fresh slots
(bootstrapped via the delta protocol's full-state fallback) or parks
live ones (through the supervisor's retirement teardown, so a parked
worker leaks neither a process nor a ``/dev/shm`` segment).

Three policy families, selectable via ``--autoscale``:

* ``react`` — thresholds on windowed payoff and hit rate: shrink while
  speculation is underwater, grow one step while it pays and dispatch
  is backpressured. Cheap, stateless beyond one window.
* ``hist`` — a sliding histogram of windowed payoff; the target scales
  with the fraction of recent boundaries whose payoff beat the
  overhead floor, so one good (or bad) boundary cannot whipsaw the
  pool.
* ``reg`` — least-squares trend fit on recent payoff; the target maps
  the *extrapolated* payoff, so a warming cache grows capacity before
  the histogram would and a dying phase sheds it before react's
  thresholds trip.

``--autoscale off`` constructs no autoscaler at all
(:func:`resolve_autoscaler` returns ``None``) — the engine's boundary
loop is byte-identical to the fixed-width runtime.
"""

import numpy as np

#: Policy registry names (the ``--autoscale`` choices, minus ``off``).
POLICIES = ("react", "hist", "reg")


class AutoscaleSignals:
    """One boundary's worth of scaling evidence (cumulative counters;
    policies difference consecutive samples themselves)."""

    __slots__ = ("superstep", "active_workers", "parked_workers",
                 "queue_depth", "inflight", "expected_utility", "stride",
                 "hits", "queries", "executed", "fast_forwarded",
                 "shipped", "used", "backpressure")

    def __init__(self, superstep, active_workers, parked_workers,
                 queue_depth, inflight, expected_utility, stride, hits,
                 queries, executed, fast_forwarded, shipped, used,
                 backpressure):
        self.superstep = superstep
        self.active_workers = active_workers
        self.parked_workers = parked_workers
        self.queue_depth = queue_depth  # per-worker submit capacity
        self.inflight = inflight  # tasks currently on workers
        self.expected_utility = expected_utility  # sum(p_i) * mean_jump
        self.stride = stride  # instructions per superstep
        self.hits = hits
        self.queries = queries
        self.executed = executed
        self.fast_forwarded = fast_forwarded
        self.shipped = shipped  # entries workers delivered
        self.used = used  # shipped entries that fast-forwarded main
        self.backpressure = backpressure  # dispatches refused, cumulative

    def __repr__(self):
        return ("AutoscaleSignals(superstep=%d, active=%d, utility=%.1f, "
                "hits=%d/%d, ff=%d, exec=%d)"
                % (self.superstep, self.active_workers,
                   self.expected_utility, self.hits, self.queries,
                   self.fast_forwarded, self.executed))


class _Window:
    """Differences consecutive signal samples into per-boundary rates."""

    __slots__ = ("prev", "payoffs", "hit_rates", "backpressure", "size")

    def __init__(self, size):
        self.prev = None
        self.payoffs = []  # ff / (ff + exec) per inter-sample gap
        self.hit_rates = []
        self.backpressure = []  # refused dispatches per gap
        self.size = size

    def push(self, sig):
        prev, self.prev = self.prev, sig
        if prev is None:
            return
        d_ff = sig.fast_forwarded - prev.fast_forwarded
        d_exec = sig.executed - prev.executed
        d_hits = sig.hits - prev.hits
        d_queries = sig.queries - prev.queries
        if d_ff + d_exec > 0:
            self.payoffs.append(d_ff / float(d_ff + d_exec))
        if d_queries > 0:
            self.hit_rates.append(d_hits / float(d_queries))
        self.backpressure.append(sig.backpressure - prev.backpressure)
        del self.payoffs[:-self.size]
        del self.hit_rates[:-self.size]
        del self.backpressure[:-self.size]


class Autoscaler:
    """Base policy: sampling cadence, clamping, decision records.

    ``min_workers`` may be 0 — "stop speculating entirely" is the
    paper-faithful answer when utility is underwater; the engine keeps
    making sequential progress and the pool regrows on demand.
    Decisions are rate-limited to one per ``cooldown`` boundaries so a
    resize settles (new workers warm up, parked slots drain) before it
    is judged.
    """

    name = "base"

    def __init__(self, min_workers=0, max_workers=8, cooldown=8,
                 window=16):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if not 0 <= min_workers <= max_workers:
            raise ValueError("need 0 <= min_workers <= max_workers")
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.cooldown = max(1, cooldown)
        self.window = _Window(window)
        self.decisions = []  # dicts, mirrored into RuntimeStats
        self._last_decision_step = None

    def observe(self, sig):
        """Ingest one boundary sample; returns a target worker count
        when the policy wants a resize, else ``None``."""
        self.window.push(sig)
        last = self._last_decision_step
        if last is not None and sig.superstep - last < self.cooldown:
            return None
        target = self._decide(sig)
        if target is None:
            return None
        self._last_decision_step = sig.superstep
        target = max(self.min_workers, min(self.max_workers, int(target)))
        if target == sig.active_workers:
            return None
        self.decisions.append({
            "superstep": sig.superstep, "policy": self.name,
            "from": sig.active_workers, "target": target,
            "payoff": round(self._payoff(), 4),
            "utility": round(sig.expected_utility, 2),
        })
        return target

    def _payoff(self):
        payoffs = self.window.payoffs
        return payoffs[-1] if payoffs else 0.0

    def _decide(self, sig):
        raise NotImplementedError

    def __repr__(self):
        return ("%s(min=%d, max=%d, cooldown=%d, decisions=%d)"
                % (type(self).__name__, self.min_workers,
                   self.max_workers, self.cooldown, len(self.decisions)))


class ReactiveAutoscaler(Autoscaler):
    """Threshold reactions on the latest window.

    Shrink one step while speculation is underwater: payoff below
    ``low_payoff``, with the allocator's expected utility (under one
    superstep's worth of instructions means nothing worth dispatching)
    able to veto the shrink only until the window holds three real
    payoff samples — measurement outranks forecast. Grow one step
    while payoff clears ``high_payoff`` and dispatch saw backpressure
    in the window (idle demand exists). Otherwise hold.
    """

    name = "react"

    def __init__(self, low_payoff=0.15, high_payoff=0.5, **kwargs):
        super(ReactiveAutoscaler, self).__init__(**kwargs)
        self.low_payoff = low_payoff
        self.high_payoff = high_payoff

    def _decide(self, sig):
        if not self.window.payoffs:
            # No evidence either way yet: a cold run bleeds boundary
            # overhead until proven otherwise, so lean down one step.
            if sig.expected_utility < sig.stride:
                return sig.active_workers - 1
            return None
        payoff = self._payoff()
        pressured = any(b > 0 for b in self.window.backpressure)
        if payoff <= self.low_payoff:
            # Expected utility is the allocator's *forecast*; realized
            # payoff is ground truth. The forecast gets the benefit of
            # the doubt only until the window holds real evidence —
            # otherwise a confident predictor whose entries never land
            # (cold cache, dead phase) pins the pool wide forever.
            if (len(self.window.payoffs) >= 3
                    or sig.expected_utility < sig.stride):
                return sig.active_workers - 1
            return None
        if payoff >= self.high_payoff and pressured:
            return sig.active_workers + 1
        return None


class HistogramAutoscaler(Autoscaler):
    """Occupancy of the windowed payoff distribution above a floor.

    The fraction of recent boundaries whose payoff beat
    ``payoff_floor`` maps linearly onto ``[min_workers, max_workers]``.
    A payoff distribution piled at zero (cold cache, dead phase)
    collapses the pool; one piled near 1.0 saturates it; a mixed
    distribution holds a proportional middle — the whole window votes,
    so outlier boundaries are outvoted rather than obeyed.
    """

    name = "hist"

    def __init__(self, payoff_floor=0.25, **kwargs):
        super(HistogramAutoscaler, self).__init__(**kwargs)
        self.payoff_floor = payoff_floor

    def _decide(self, sig):
        payoffs = self.window.payoffs
        if len(payoffs) < 3:
            return None
        above = sum(1 for p in payoffs if p >= self.payoff_floor)
        fraction = above / float(len(payoffs))
        span = self.max_workers - self.min_workers
        return self.min_workers + int(round(fraction * span))


class RegressionAutoscaler(Autoscaler):
    """Trend-fit on recent payoff, provisioning for where it is going.

    A degree-1 least-squares fit over the window extrapolates payoff
    ``cooldown`` boundaries ahead; the forecast maps linearly onto
    ``[min_workers, max_workers]``. A warming cache (positive slope)
    earns capacity before its current payoff alone would justify it; a
    phase falling off a cliff sheds workers while the histogram is
    still averaging over the good times.
    """

    name = "reg"

    def __init__(self, **kwargs):
        super(RegressionAutoscaler, self).__init__(**kwargs)

    def _decide(self, sig):
        payoffs = self.window.payoffs
        if len(payoffs) < 4:
            return None
        ys = np.asarray(payoffs, dtype=np.float64)
        xs = np.arange(len(ys), dtype=np.float64)
        slope, intercept = np.polyfit(xs, ys, 1)
        forecast = intercept + slope * (len(ys) - 1 + self.cooldown)
        forecast = min(1.0, max(0.0, forecast))
        span = self.max_workers - self.min_workers
        return self.min_workers + int(round(forecast * span))


_POLICY_CLASSES = {
    "react": ReactiveAutoscaler,
    "hist": HistogramAutoscaler,
    "reg": RegressionAutoscaler,
}


def make_autoscaler(policy, **kwargs):
    """Construct a policy by registry name (``react``/``hist``/``reg``)."""
    try:
        cls = _POLICY_CLASSES[policy]
    except KeyError:
        raise ValueError("unknown autoscale policy %r (want one of %s)"
                         % (policy, "/".join(POLICIES)))
    return cls(**kwargs)


def resolve_autoscaler(runtime_config):
    """The run's autoscaler per its :class:`RuntimeConfig` — ``None``
    when the policy is ``off`` (the engine then never samples, keeping
    the fixed-width path byte-identical)."""
    policy = runtime_config.autoscale
    if policy in (None, "off"):
        return None
    return make_autoscaler(
        policy,
        min_workers=runtime_config.autoscale_min_workers,
        max_workers=(runtime_config.autoscale_max_workers
                     or runtime_config.n_workers),
        cooldown=runtime_config.autoscale_cooldown,
        window=runtime_config.autoscale_window)
