"""Unified resource governance for the runtime and the serve daemon.

The paper frames speculation as a resource-allocation problem: spend
spare capacity to buy wall-clock. This module is the other half of that
bargain — *bounding* what gets spent. It owns the probes and budgets
for the four things this system can run out of:

* **worker memory** — each worker process runs under a configurable
  ``RLIMIT_AS`` (:func:`default_worker_rlimit_as`), so a runaway
  speculation hits a contained ``MemoryError`` (reported as a failed
  task, or at worst a worker crash) instead of taking the host;
* **/dev/shm** — the tmpfs backing ``multiprocessing.shared_memory``
  (:func:`shm_backing_dir` probes which one that actually is; it is
  *not* always ``/dev/shm``) holds the transport rings; exhaustion
  degrades a worker to pipe transport rather than failing the spawn;
* **disk** — cache shards and the job journal treat ``ENOSPC``
  (:func:`is_enospc`) as a pressure event: prune oldest, retry, and
  suspend write-through if still starved (results stay correct,
  durability recovers with the space);
* **file descriptors** — the daemon sheds load at admission when fd
  headroom runs out, instead of dying mid-``accept``.

:class:`ResourceGovernor` combines the probes into one admission
verdict the serve daemon consults before accepting a job; a verdict of
"no" becomes the retryable ``overloaded`` protocol error. Every floor
has a ``REPRO_*`` environment default so deployments can tune budgets
without code.

The probes are injectable (and :meth:`ResourceGovernor.force_pressure`
lets the chaos tier deterministically fake exhaustion), so every
degradation path is exercisable without actually filling a disk.
"""

import errno
import os

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None

#: Env-tunable floors. ``0`` disables a floor entirely.
ENV_SHM_HEADROOM = "REPRO_SHM_HEADROOM_BYTES"
ENV_DISK_FLOOR = "REPRO_DISK_FLOOR_BYTES"
ENV_FD_HEADROOM = "REPRO_FD_HEADROOM"
ENV_MAX_QUEUED = "REPRO_MAX_QUEUED_JOBS"
ENV_WORKER_RLIMIT_AS = "REPRO_WORKER_RLIMIT_AS"

DEFAULT_SHM_HEADROOM_BYTES = 64 * 1024 * 1024
DEFAULT_DISK_FLOOR_BYTES = 32 * 1024 * 1024
DEFAULT_FD_HEADROOM = 64
DEFAULT_MAX_QUEUED_JOBS = 64


def _env_int(name, default):
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def default_shm_headroom_bytes():
    return _env_int(ENV_SHM_HEADROOM, DEFAULT_SHM_HEADROOM_BYTES)


def default_disk_floor_bytes():
    return _env_int(ENV_DISK_FLOOR, DEFAULT_DISK_FLOOR_BYTES)


def default_fd_headroom():
    return _env_int(ENV_FD_HEADROOM, DEFAULT_FD_HEADROOM)


def default_max_queued_jobs():
    return _env_int(ENV_MAX_QUEUED, DEFAULT_MAX_QUEUED_JOBS)


def default_worker_rlimit_as():
    """Per-worker address-space cap in bytes, or ``None`` (unlimited)."""
    value = _env_int(ENV_WORKER_RLIMIT_AS, 0)
    return value if value > 0 else None


def is_enospc(exc):
    """Whether an ``OSError`` means "out of space" (ENOSPC or the
    quota-flavored EDQUOT — both degrade the same way)."""
    return isinstance(exc, OSError) and exc.errno in (
        errno.ENOSPC, getattr(errno, "EDQUOT", errno.ENOSPC))


# -- probes ------------------------------------------------------------------

#: Candidate tmpfs mounts, in the order Linux distros actually use them.
_SHM_DIR_CANDIDATES = ("/dev/shm", "/run/shm", "/var/run/shm", "/tmp")

_shm_backing_dir_cache = None


def shm_backing_dir(refresh=False):
    """The directory where ``multiprocessing.shared_memory`` segments
    actually live on this host.

    The old watchdog probe hardcoded ``/dev/shm``, which silently
    measured the wrong filesystem on hosts where glibc's ``shm_open``
    maps elsewhere. Here we create a throwaway segment and look for its
    backing file among the candidate mounts; the answer is cached for
    the life of the process. Falls back to ``/dev/shm`` when nothing
    can be probed (the segment machinery itself unavailable).
    """
    global _shm_backing_dir_cache
    if _shm_backing_dir_cache is not None and not refresh:
        return _shm_backing_dir_cache
    found = None
    try:
        from multiprocessing import shared_memory
        probe = shared_memory.SharedMemory(create=True, size=1)
        try:
            for candidate in _SHM_DIR_CANDIDATES:
                if os.path.exists(os.path.join(candidate, probe.name)):
                    found = candidate
                    break
        finally:
            probe.close()
            try:
                probe.unlink()
            except (OSError, FileNotFoundError):
                pass
    except Exception:
        found = None
    if found is None:
        for candidate in _SHM_DIR_CANDIDATES:
            if os.path.isdir(candidate):
                found = candidate
                break
        else:
            found = "/dev/shm"
    _shm_backing_dir_cache = found
    return found


def shm_headroom_bytes(path=None):
    """Free bytes on the tmpfs backing shared memory (or ``path``).
    ``None`` when the filesystem cannot be probed — the caller must
    treat that as "fine", not "empty" (a probe failure is not
    pressure)."""
    try:
        stat = os.statvfs(path or shm_backing_dir())
    except (OSError, AttributeError):
        return None
    return stat.f_bavail * stat.f_frsize


def disk_free_bytes(path):
    """Free bytes on the filesystem holding ``path`` (``None`` when
    unprobeable)."""
    if not path:
        return None
    probe = path
    while probe and not os.path.exists(probe):
        parent = os.path.dirname(probe)
        if parent == probe:
            break
        probe = parent
    try:
        stat = os.statvfs(probe or os.sep)
    except (OSError, AttributeError):
        return None
    return stat.f_bavail * stat.f_frsize


def open_fd_count():
    """How many fds this process holds open (``None`` off-Linux)."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


def fd_headroom():
    """Soft ``RLIMIT_NOFILE`` minus current usage (``None`` when either
    side cannot be measured)."""
    if _resource is None:
        return None
    try:
        soft, __ = _resource.getrlimit(_resource.RLIMIT_NOFILE)
    except (OSError, ValueError):
        return None
    if soft == getattr(_resource, "RLIM_INFINITY", -1):
        return None
    used = open_fd_count()
    if used is None:
        return None
    return soft - used


def apply_worker_rlimit(limit_bytes):
    """Install ``RLIMIT_AS`` in a worker process (best-effort; the cap
    is a containment device, not a guarantee). Returns the ``(soft,
    hard)`` pair the worker should restore to after a contained
    ``MemoryError`` — the hard limit is left where it was so a chaos
    ``prlimit`` tightening can always be undone from inside."""
    if _resource is None or not limit_bytes:
        return None
    try:
        soft, hard = _resource.getrlimit(_resource.RLIMIT_AS)
        if hard != _resource.RLIM_INFINITY and hard < limit_bytes:
            limit_bytes = hard
        _resource.setrlimit(_resource.RLIMIT_AS, (limit_bytes, hard))
        return (limit_bytes, hard)
    except (OSError, ValueError):
        return None


def current_rlimit_as():
    """The process's ``(soft, hard)`` ``RLIMIT_AS`` pair, or ``None``."""
    if _resource is None:
        return None
    try:
        return _resource.getrlimit(_resource.RLIMIT_AS)
    except (OSError, ValueError):
        return None


def restore_rlimit_as(saved):
    """Raise the soft ``RLIMIT_AS`` back to ``saved`` (allowed
    unprivileged as long as it stays at or under the hard limit)."""
    if _resource is None or saved is None:
        return
    try:
        __, hard = _resource.getrlimit(_resource.RLIMIT_AS)
        soft = saved[0]
        if hard != _resource.RLIM_INFINITY and soft > hard:
            soft = hard
        _resource.setrlimit(_resource.RLIMIT_AS, (soft, hard))
    except (OSError, ValueError):
        pass


# -- the governor ------------------------------------------------------------

#: Pressure kinds the governor tracks (also the ``force_pressure``
#: vocabulary the chaos tier uses).
PRESSURE_KINDS = ("queue", "shm", "disk", "fd")


class ResourceGovernor:
    """Admission control over the four exhaustible budgets.

    ``admission_reason`` returns ``None`` (admit) or a short reason
    string (shed — the daemon maps it to the retryable ``overloaded``
    error code). Floors of ``0``/``None`` disable their check. Probes
    are injectable for tests; :meth:`force_pressure` makes the next N
    checks of one kind report exhaustion, which is how the seeded
    ``fd_exhaust`` chaos fault is delivered deterministically.
    """

    def __init__(self, shm_headroom_floor=None, disk_floor_bytes=None,
                 fd_headroom_floor=None, max_queued_jobs=None,
                 shm_path=None, disk_path=None,
                 shm_probe=None, disk_probe=None, fd_probe=None):
        self.shm_headroom_floor = (default_shm_headroom_bytes()
                                   if shm_headroom_floor is None
                                   else shm_headroom_floor)
        self.disk_floor_bytes = (default_disk_floor_bytes()
                                 if disk_floor_bytes is None
                                 else disk_floor_bytes)
        self.fd_headroom_floor = (default_fd_headroom()
                                  if fd_headroom_floor is None
                                  else fd_headroom_floor)
        self.max_queued_jobs = (default_max_queued_jobs()
                                if max_queued_jobs is None
                                else max_queued_jobs)
        self.shm_path = shm_path
        self.disk_path = disk_path
        self._shm_probe = shm_probe or shm_headroom_bytes
        self._disk_probe = disk_probe or disk_free_bytes
        self._fd_probe = fd_probe or fd_headroom
        self._forced = {kind: 0 for kind in PRESSURE_KINDS}
        self.pressure_events = {kind: 0 for kind in PRESSURE_KINDS}
        self.sheds = 0
        self.admissions = 0

    # -- chaos hook ----------------------------------------------------------

    def force_pressure(self, kind, n=1):
        """Make the next ``n`` checks of ``kind`` report exhaustion."""
        if kind not in self._forced:
            raise ValueError("unknown pressure kind %r (known: %s)"
                             % (kind, ", ".join(PRESSURE_KINDS)))
        self._forced[kind] += max(0, n)

    def _take_forced(self, kind):
        if self._forced[kind] > 0:
            self._forced[kind] -= 1
            return True
        return False

    # -- verdicts ------------------------------------------------------------

    def admission_reason(self, queued_jobs=0):
        """``None`` to admit, else why this submission must be shed.

        Checked cheapest-first; the first exhausted budget wins and is
        counted, so pressure counters name the binding constraint."""
        reason = None
        if self.max_queued_jobs and (self._take_forced("queue")
                                     or queued_jobs >= self.max_queued_jobs):
            reason = "queue-bound (%d queued)" % queued_jobs
            self.pressure_events["queue"] += 1
        elif self.fd_headroom_floor and self._check_fd():
            reason = "fd-headroom"
            self.pressure_events["fd"] += 1
        elif self.shm_headroom_floor and self._check_shm():
            reason = "shm-headroom"
            self.pressure_events["shm"] += 1
        elif self.disk_floor_bytes and self._check_disk():
            reason = "disk-floor"
            self.pressure_events["disk"] += 1
        if reason is None:
            self.admissions += 1
        else:
            self.sheds += 1
        return reason

    def _check_fd(self):
        if self._take_forced("fd"):
            return True
        headroom = self._fd_probe()
        return headroom is not None and headroom < self.fd_headroom_floor

    def _check_shm(self):
        if self._take_forced("shm"):
            return True
        headroom = self._shm_probe(self.shm_path) if self.shm_path \
            else self._shm_probe()
        return headroom is not None and headroom < self.shm_headroom_floor

    def _check_disk(self):
        if self._take_forced("disk"):
            return True
        if not self.disk_path:
            return False
        free = self._disk_probe(self.disk_path)
        return free is not None and free < self.disk_floor_bytes

    # -- introspection -------------------------------------------------------

    def snapshot(self):
        """Current probe readings (for status endpoints; never raises)."""
        return {
            "shm_backing_dir": self.shm_path or shm_backing_dir(),
            "shm_headroom_bytes": (self._shm_probe(self.shm_path)
                                   if self.shm_path else self._shm_probe()),
            "disk_free_bytes": (self._disk_probe(self.disk_path)
                                if self.disk_path else None),
            "fd_headroom": self._fd_probe(),
        }

    def stats_dict(self):
        return {
            "floors": {
                "shm_headroom_bytes": self.shm_headroom_floor,
                "disk_floor_bytes": self.disk_floor_bytes,
                "fd_headroom": self.fd_headroom_floor,
                "max_queued_jobs": self.max_queued_jobs,
            },
            "pressure_events": dict(self.pressure_events),
            "sheds": self.sheds,
            "admissions": self.admissions,
            "probes": self.snapshot(),
        }
