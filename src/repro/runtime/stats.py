"""Counters for the multiprocess runtime.

The transport-level counters (bytes, crashes, respawns, timeouts) are
incremented by the :class:`~repro.runtime.pool.WorkerPool`; the
supervision counters (breaker trips, quarantines, degradations) by the
:class:`~repro.runtime.supervisor.Supervisor`; the scheduling-level
counters (dispatched, wasted, waits) by the
:class:`~repro.runtime.engine.RealParallelEngine`. One object holds
all three so a result can report the whole picture, mirroring how
:class:`~repro.core.stats.RunStats` serves the simulated engine.
:meth:`as_dict` feeds ``repro run --backend real --json`` so chaos
runs are machine-checkable.
"""


class RuntimeStats:
    """Counters accumulated by a real-runtime run."""

    def __init__(self):
        self.tasks_dispatched = 0
        self.tasks_completed = 0  # results received, any status
        self.entries_shipped = 0  # results that carried a cache entry
        self.entries_used = 0  # shipped entries that fast-forwarded main
        self.tasks_wasted = 0  # shipped entries never used (set at exit)
        self.tasks_failed = 0  # fault / budget / empty results
        self.tasks_timed_out = 0
        self.tasks_crashed = 0
        self.workers_respawned = 0
        # -- elastic autoscaling (runtime/autoscaler.py) ---------------
        self.autoscale_resizes = 0  # boundary decisions actually applied
        self.workers_grown = 0  # slots added/refilled by the autoscaler
        self.workers_parked = 0  # live slots deliberately shrunk away
        self.tasks_parked = 0  # in-flight tasks absorbed by a park
        self.autoscale_decisions = []  # per-policy decision dicts
        # -- transport accounting --------------------------------------
        # bytes_sent/bytes_received are *physical pipe bytes*: every
        # frame actually written to / read from a pipe, in both
        # directions, on every path (tasks, results, audit verdicts,
        # rejected/dropped frames, shutdown) — counted once at the
        # transport boundary so the two directions stay symmetric.
        self.bytes_sent = 0  # engine -> workers, physical pipe bytes
        self.bytes_received = 0  # workers -> engine, physical pipe bytes
        # Logical bytes: what the equivalent inline (pipe-transport)
        # frames would have carried — the denominator for "how much the
        # wire was killed".
        self.logical_bytes_sent = 0
        self.logical_bytes_received = 0
        # Bulk bytes moved through shared-memory rings instead of pipes.
        self.shm_bytes_written = 0  # task blobs pushed by the engine
        self.shm_bytes_read = 0  # result blobs read by the engine
        # Delta codec effectiveness on shipped start states.
        self.states_delta = 0  # start states shipped as sparse deltas
        self.states_full = 0  # start states shipped as full snapshots
        self.state_bytes_raw = 0  # raw state-vector bytes (pre-codec)
        self.state_bytes_shipped = 0  # encoded blob bytes (post-codec)
        self.ring_full_backpressure = 0  # ring-full events at dispatch
        # Ring pressure no longer refuses a dispatch: a blob that does
        # not fit (ring full, oversized, or a chaos shm_full fault)
        # falls back to inline pipe delivery. The ledger invariant the
        # property test pins: on the shm transport,
        # state_bytes_shipped == shm_bytes_written + shm_fallback_bytes.
        self.shm_fallbacks = 0  # task blobs delivered inline instead
        self.shm_fallback_bytes = 0  # bytes of those inline blobs
        self.shm_alloc_failures = 0  # ring creation failed -> pipe worker
        self.tasks_oom = 0  # contained worker MemoryErrors (rlimit hit)
        self.stale_results = 0  # epoch-mismatch replies (re-dispatched)
        self.worker_instructions = 0  # really executed on workers
        self.inflight_waits = 0  # boundaries spent waiting on a worker
        self.inflight_wait_seconds = 0.0
        self.dispatch_backpressure = 0  # dispatches skipped: no idle slot
        # -- supervision (runtime/supervisor.py) -----------------------
        self.breaker_trips = 0  # circuit breaker openings (quarantine events)
        self.workers_quarantined = 0  # currently in quarantine (gauge)
        self.workers_readmitted = 0  # quarantined slots brought back
        self.workers_retired = 0  # slots shrunk away for good
        self.pool_degradations = 0  # times the run fell below the floor
        self.speculation_reenabled = 0  # recoveries out of degraded mode
        self.degraded_boundaries = 0  # boundaries run without speculation
        # -- transport hardening / fault injection ---------------------
        self.frames_rejected = 0  # corrupt/oversized/protocol-violating
        self.results_dropped = 0  # results discarded by fault injection
        self.faults_injected = 0  # fault-plan events actually applied
        # -- checkpointing ---------------------------------------------
        self.checkpoints_written = 0
        self.checkpoints_restored = 0
        # -- semantic verification (verify/) ---------------------------
        self.audits_sampled = 0  # splices picked for shadow audit
        self.audits_clean = 0  # audits that confirmed the entry
        self.audits_divergent = 0  # audits that refuted the entry
        self.audits_lost = 0  # audit tasks lost (crash/timeout/drop)
        self.audit_rollbacks = 0  # pre-splice snapshot restores
        self.cache_groups_quarantined = 0  # (rip, dep-set) groups hidden
        self.cache_groups_readmitted = 0  # groups re-admitted after decay
        self.incidents = []  # structured divergence reports (dicts)

    def as_dict(self):
        out = dict(self.__dict__)
        out["incidents"] = [dict(i) for i in self.incidents]
        out["autoscale_decisions"] = [dict(d)
                                      for d in self.autoscale_decisions]
        return out

    # -- per-job accounting on a shared pool ---------------------------------
    #
    # A long-lived daemon reuses one pool (and therefore one RuntimeStats)
    # across many jobs; a job's own contribution is the difference between
    # two snapshots. Gauges (workers_quarantined) can legitimately move
    # down, so deltas may be negative for those.

    def snapshot(self):
        """Numeric counter values right now, for later differencing."""
        out = {key: value for key, value in self.__dict__.items()
               if isinstance(value, (int, float))}
        out["n_incidents"] = len(self.incidents)
        out["n_autoscale_decisions"] = len(self.autoscale_decisions)
        return out

    def delta_since(self, snapshot):
        """Counter movement since :meth:`snapshot` — plus the incident
        dicts recorded in between (``incidents`` key)."""
        current = self.snapshot()
        delta = {key: value - snapshot.get(key, 0)
                 for key, value in current.items()}
        delta["incidents"] = [dict(i) for i in
                              self.incidents[snapshot.get("n_incidents", 0):]]
        delta["autoscale_decisions"] = [
            dict(d) for d in self.autoscale_decisions[
                snapshot.get("n_autoscale_decisions", 0):]]
        return delta

    def __repr__(self):
        return ("RuntimeStats(dispatched=%d, completed=%d, shipped=%d, "
                "used=%d, timed_out=%d, crashed=%d)"
                % (self.tasks_dispatched, self.tasks_completed,
                   self.entries_shipped, self.entries_used,
                   self.tasks_timed_out, self.tasks_crashed))
