"""Wire format for the multiprocess speculation runtime.

Every message between the engine and a worker is one framed byte string
(the framing itself — a length prefix — is provided by
``multiprocessing.Connection.send_bytes``). A message is::

    [ 4B magic "ASCP" | u16 version | u8 type | u32 CRC32(payload) | payload ]

The payload CRC makes corruption detection *sound*: a cache entry is
applied to the main state as a trusted fact, so a bit-flipped frame
that still parsed structurally would silently poison the final state.
With the checksum, any damage — flipped byte, truncation, garbage —
is rejected at :func:`decode_message` and the sender is treated as a
crashed worker. Endpoints additionally bound the frame size they will
read (``RuntimeConfig.max_frame_bytes``) so one corrupt length field
in the pipe's own framing cannot force a gigabyte allocation.

Three message types exist: a :data:`MSG_TASK` carrying a speculation
assignment (predicted full start state, recognized IP, occurrence
budget, instruction budget), a :data:`MSG_RESULT` carrying the outcome
(instruction count, halt flag, optional fault string, optional
serialized :class:`~repro.core.trajectory_cache.CacheEntry`), and a
:data:`MSG_SHUTDOWN`.

Design rules: fixed-width little-endian structs plus raw numpy array
bytes — nothing on the wire is ever unpickled, so a compromised or
corrupted worker can at worst produce a cache entry that never matches
(entries are verified facts only if the worker ran honestly; within one
machine that is our trust boundary, the same one ``multiprocessing``
itself assumes). A version bump in either endpoint makes the other
reject the stream loudly instead of misinterpreting it.
"""

import struct
import zlib

import numpy as np

from repro.core.trajectory_cache import CacheEntry
from repro.errors import ReproError

WIRE_MAGIC = b"ASCP"
WIRE_VERSION = 3

#: Default ceiling on a single frame; RuntimeConfig can override.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

MSG_TASK = 1
MSG_RESULT = 2
MSG_SHUTDOWN = 3

#: Task flags (bitmask).
FLAG_AUDIT = 1  # replay exactly ``max_instructions`` steps, reference tier

#: Result status codes (worker-side view of one speculation).
RESULT_OK = 0  # a usable cache entry is attached
RESULT_FAULT = 1  # the predicted state faulted (no entry)
RESULT_BUDGET = 2  # wandering budget exhausted mid-superstep (no entry)
RESULT_EMPTY = 3  # zero instructions executed (e.g. already halted)

_HEADER = struct.Struct("<4sHBI")  # magic, version, type, payload CRC32
_TASK = struct.Struct("<QIIQBI")  # task_id, rip, occurrences, budget,
#                                    flags, state_len
_RESULT = struct.Struct("<QBQBBH")  # task_id, status, instructions,
#                                     halted, has_entry, fault_len
_ENTRY = struct.Struct("<IQIBII")  # rip, length, occurrences, halted,
#                                    n_start, n_end


class WireError(ReproError):
    """A runtime message could not be decoded."""


class TaskMessage:
    """Decoded :data:`MSG_TASK` payload."""

    __slots__ = ("task_id", "rip", "occurrences", "max_instructions",
                 "start_state", "flags")

    def __init__(self, task_id, rip, occurrences, max_instructions,
                 start_state, flags=0):
        self.task_id = task_id
        self.rip = rip
        self.occurrences = occurrences
        self.max_instructions = max_instructions
        self.start_state = start_state  # bytes, one full state vector
        self.flags = flags


class ResultMessage:
    """Decoded :data:`MSG_RESULT` payload."""

    __slots__ = ("task_id", "status", "instructions", "halted", "fault",
                 "entry")

    def __init__(self, task_id, status, instructions, halted, fault, entry):
        self.task_id = task_id
        self.status = status
        self.instructions = instructions
        self.halted = halted
        self.fault = fault
        self.entry = entry  # CacheEntry or None


# -- entries -----------------------------------------------------------------

def encode_entry(entry):
    """Serialize one cache entry (struct header + raw arrays)."""
    out = bytearray()
    out += _ENTRY.pack(entry.rip, entry.length, entry.occurrences,
                       1 if entry.halted else 0,
                       len(entry.start_indices), len(entry.end_indices))
    out += np.asarray(entry.start_indices, dtype="<i8").tobytes()
    out += np.asarray(entry.start_values, dtype=np.uint8).tobytes()
    out += np.asarray(entry.end_indices, dtype="<i8").tobytes()
    out += np.asarray(entry.end_values, dtype=np.uint8).tobytes()
    return bytes(out)


def decode_entry(data, pos=0):
    """Inverse of :func:`encode_entry`; returns ``(entry, next_pos)``."""
    if pos + _ENTRY.size > len(data):
        raise WireError("truncated entry header")
    rip, length, occurrences, halted, n_start, n_end = \
        _ENTRY.unpack_from(data, pos)
    pos += _ENTRY.size
    if pos + 9 * n_start + 9 * n_end > len(data):
        raise WireError("truncated entry arrays")
    start_indices = np.frombuffer(data, dtype="<i8", count=n_start,
                                  offset=pos).astype(np.int64)
    pos += 8 * n_start
    start_values = np.frombuffer(data, dtype=np.uint8, count=n_start,
                                 offset=pos).copy()
    pos += n_start
    end_indices = np.frombuffer(data, dtype="<i8", count=n_end,
                                offset=pos).astype(np.int64)
    pos += 8 * n_end
    end_values = np.frombuffer(data, dtype=np.uint8, count=n_end,
                               offset=pos).copy()
    pos += n_end
    entry = CacheEntry(rip, start_indices, start_values, end_indices,
                       end_values, length, occurrences=occurrences,
                       ready_time=0.0, halted=bool(halted))
    return entry, pos


# -- messages ----------------------------------------------------------------

def _frame(msg_type, payload):
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _HEADER.pack(WIRE_MAGIC, WIRE_VERSION, msg_type, crc) + payload


def decode_message(data, max_frame_bytes=None):
    """Validate header and payload checksum; return
    ``(msg_type, payload_offset)``."""
    if max_frame_bytes is not None and len(data) > max_frame_bytes:
        raise WireError("frame of %d bytes exceeds the %d-byte limit"
                        % (len(data), max_frame_bytes))
    if len(data) < _HEADER.size:
        raise WireError("message too short for header")
    magic, version, msg_type, crc = _HEADER.unpack_from(data, 0)
    if magic != WIRE_MAGIC:
        raise WireError("bad magic %r (not a runtime message)" % (magic,))
    if version != WIRE_VERSION:
        raise WireError("wire version %d, this endpoint speaks %d"
                        % (version, WIRE_VERSION))
    if msg_type not in (MSG_TASK, MSG_RESULT, MSG_SHUTDOWN):
        raise WireError("unknown message type %d" % msg_type)
    if zlib.crc32(data[_HEADER.size:]) & 0xFFFFFFFF != crc:
        raise WireError("frame payload failed its checksum")
    return msg_type, _HEADER.size


def encode_task(task_id, rip, occurrences, max_instructions, start_state,
                flags=0):
    payload = _TASK.pack(task_id, rip, occurrences, max_instructions,
                         flags, len(start_state)) + bytes(start_state)
    return _frame(MSG_TASK, payload)


def decode_task(data, pos):
    if pos + _TASK.size > len(data):
        raise WireError("truncated task header")
    task_id, rip, occurrences, budget, flags, state_len = \
        _TASK.unpack_from(data, pos)
    pos += _TASK.size
    if pos + state_len != len(data):
        raise WireError("task state length mismatch")
    return TaskMessage(task_id, rip, occurrences, budget,
                       bytes(data[pos:pos + state_len]), flags=flags)


def encode_result(task_id, result):
    """Encode a :class:`~repro.core.speculation.SpeculationResult`."""
    if result.fault is not None:
        status = RESULT_FAULT
    elif result.entry is not None:
        status = RESULT_OK
    elif result.instructions == 0:
        status = RESULT_EMPTY
    else:
        status = RESULT_BUDGET
    fault = (result.fault or "").encode("utf-8")[:65535]
    entry_blob = b"" if result.entry is None else encode_entry(result.entry)
    payload = _RESULT.pack(task_id, status, result.instructions,
                           1 if result.halted else 0,
                           1 if result.entry is not None else 0,
                           len(fault))
    return _frame(MSG_RESULT, payload + fault + entry_blob)


def decode_result(data, pos):
    if pos + _RESULT.size > len(data):
        raise WireError("truncated result header")
    task_id, status, instructions, halted, has_entry, fault_len = \
        _RESULT.unpack_from(data, pos)
    pos += _RESULT.size
    if pos + fault_len > len(data):
        raise WireError("truncated fault string")
    fault = data[pos:pos + fault_len].decode("utf-8") if fault_len else None
    pos += fault_len
    entry = None
    if has_entry:
        entry, pos = decode_entry(data, pos)
    if pos != len(data):
        raise WireError("trailing bytes in result message")
    return ResultMessage(task_id, status, instructions, bool(halted),
                         fault, entry)


def encode_shutdown():
    return _frame(MSG_SHUTDOWN, b"")
