"""Wire format for the multiprocess speculation runtime.

Every message between the engine and a worker is one framed byte string
(the framing itself — a length prefix — is provided by
``multiprocessing.Connection.send_bytes``). A message is::

    [ 4B magic "ASCP" | u16 version | u8 type | u32 CRC32(payload) | payload ]

The payload CRC makes corruption detection *sound*: a cache entry is
applied to the main state as a trusted fact, so a bit-flipped frame
that still parsed structurally would silently poison the final state.
With the checksum, any damage — flipped byte, truncation, garbage —
is rejected at :func:`decode_message` and the sender is treated as a
crashed worker. Endpoints additionally bound the frame size they will
read (``RuntimeConfig.max_frame_bytes``) so one corrupt length field
in the pipe's own framing cannot force a gigabyte allocation.

Five message types exist. The pipe transport uses :data:`MSG_TASK`
(a speculation assignment carrying the predicted full start state
inline) and :data:`MSG_RESULT` (the outcome: instruction count, halt
flag, optional fault string, optional serialized
:class:`~repro.core.trajectory_cache.CacheEntry`). The shm transport
uses :data:`MSG_TASK_SHM` / :data:`MSG_RESULT_SHM`, whose payload
blobs (a delta-compressed start state; a serialized entry) normally
live in a :mod:`repro.runtime.shm` ring and are named here only by a
``(seq, length, CRC32)`` reference — the frame itself stays tiny.
Either shm frame can instead carry its blob inline
(:data:`BLOB_INLINE`) when the ring cannot ever fit it; the codec is
identical either way. :data:`MSG_SHUTDOWN` is shared.

The delta codec (:func:`encode_state_delta` / :func:`decode_state_delta`)
is how the engine avoids shipping a full machine state per task — the
paper broadcasts delta-compressed states to query its distributed
cache for the same reason. Each worker's last reconstructed state is
the implicit dictionary: a task ships only the bytes that differ from
it (sparse index/value pairs), falling back to a full snapshot when
the delta would not pay, on first contact, and after a respawn. A
monotonically increasing *epoch* names each base state; a worker that
receives a sparse delta against an epoch it does not hold answers
:data:`RESULT_STALE` instead of guessing, and the engine re-dispatches
against a fresh full snapshot.

Design rules: fixed-width little-endian structs plus raw numpy array
bytes — nothing on the wire is ever unpickled, so a compromised or
corrupted worker can at worst produce a cache entry that never matches
(entries are verified facts only if the worker ran honestly; within one
machine that is our trust boundary, the same one ``multiprocessing``
itself assumes). A version bump in either endpoint makes the other
reject the stream loudly instead of misinterpreting it.
"""

import struct
import zlib

import numpy as np

from repro.core.trajectory_cache import CacheEntry
from repro.errors import ReproError

WIRE_MAGIC = b"ASCP"
WIRE_VERSION = 4

#: Default ceiling on a single frame; RuntimeConfig can override.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

MSG_TASK = 1
MSG_RESULT = 2
MSG_SHUTDOWN = 3
MSG_TASK_SHM = 4
MSG_RESULT_SHM = 5

_MSG_TYPES = frozenset((MSG_TASK, MSG_RESULT, MSG_SHUTDOWN, MSG_TASK_SHM,
                        MSG_RESULT_SHM))

#: Task flags (bitmask).
FLAG_AUDIT = 1  # replay exactly ``max_instructions`` steps, reference tier

#: Result status codes (worker-side view of one speculation).
RESULT_OK = 0  # a usable cache entry is attached
RESULT_FAULT = 1  # the predicted state faulted (no entry)
RESULT_BUDGET = 2  # wandering budget exhausted mid-superstep (no entry)
RESULT_EMPTY = 3  # zero instructions executed (e.g. already halted)
RESULT_STALE = 4  # epoch mismatch: delta base unknown, task not executed

#: Where an shm frame's payload blob lives.
BLOB_SHM = 0  # in the sender's ring, at (seq, length)
BLOB_INLINE = 1  # appended to the control frame (ring could not fit it)

#: State-delta blob kinds (first byte of every state blob).
DELTA_FULL = 0  # raw full state vector follows
DELTA_SPARSE = 1  # sparse (index, value) pairs against the base state

_HEADER = struct.Struct("<4sHBI")  # magic, version, type, payload CRC32
_TASK = struct.Struct("<QIIQBI")  # task_id, rip, occurrences, budget,
#                                    flags, state_len
_RESULT = struct.Struct("<QBQBBH")  # task_id, status, instructions,
#                                     halted, has_entry, fault_len
_ENTRY = struct.Struct("<IQIBII")  # rip, length, occurrences, halted,
#                                    n_start, n_end
_DELTA = struct.Struct("<BI")  # kind, count (sparse) / length (full)
_BLOBREF = struct.Struct("<BQII")  # location, seq, length, CRC32
_TASK_SHM = struct.Struct("<QIIQBII")  # task_id, rip, occurrences,
#                                         budget, flags, base_epoch, epoch
_RESULT_SHM = struct.Struct("<QBQBBH")  # task_id, status, instructions,
#                                          halted, has_entry, fault_len


class WireError(ReproError):
    """A runtime message could not be decoded."""


class TaskMessage:
    """Decoded :data:`MSG_TASK` payload."""

    __slots__ = ("task_id", "rip", "occurrences", "max_instructions",
                 "start_state", "flags")

    def __init__(self, task_id, rip, occurrences, max_instructions,
                 start_state, flags=0):
        self.task_id = task_id
        self.rip = rip
        self.occurrences = occurrences
        self.max_instructions = max_instructions
        self.start_state = start_state  # bytes, one full state vector
        self.flags = flags


class ResultMessage:
    """Decoded :data:`MSG_RESULT` payload."""

    __slots__ = ("task_id", "status", "instructions", "halted", "fault",
                 "entry")

    def __init__(self, task_id, status, instructions, halted, fault, entry):
        self.task_id = task_id
        self.status = status
        self.instructions = instructions
        self.halted = halted
        self.fault = fault
        self.entry = entry  # CacheEntry or None


class TaskRefMessage:
    """Decoded :data:`MSG_TASK_SHM` payload: a task whose start-state
    blob lives in the task ring (or inline when the ring cannot hold
    it). ``blob`` is the inline bytes or ``None``."""

    __slots__ = ("task_id", "rip", "occurrences", "max_instructions",
                 "flags", "base_epoch", "epoch", "location", "seq",
                 "blob_len", "blob_crc", "blob")

    def __init__(self, task_id, rip, occurrences, max_instructions, flags,
                 base_epoch, epoch, location, seq, blob_len, blob_crc,
                 blob=None):
        self.task_id = task_id
        self.rip = rip
        self.occurrences = occurrences
        self.max_instructions = max_instructions
        self.flags = flags
        self.base_epoch = base_epoch  # epoch the delta was encoded against
        self.epoch = epoch  # epoch the reconstructed state will carry
        self.location = location  # BLOB_SHM or BLOB_INLINE
        self.seq = seq
        self.blob_len = blob_len
        self.blob_crc = blob_crc
        self.blob = blob


class ResultRefMessage:
    """Decoded :data:`MSG_RESULT_SHM` payload; the entry blob (if any)
    lives in the result ring or inline."""

    __slots__ = ("task_id", "status", "instructions", "halted", "fault",
                 "has_entry", "location", "seq", "blob_len", "blob_crc",
                 "blob")

    def __init__(self, task_id, status, instructions, halted, fault,
                 has_entry, location, seq, blob_len, blob_crc, blob=None):
        self.task_id = task_id
        self.status = status
        self.instructions = instructions
        self.halted = halted
        self.fault = fault
        self.has_entry = has_entry
        self.location = location
        self.seq = seq
        self.blob_len = blob_len
        self.blob_crc = blob_crc
        self.blob = blob


# -- state delta codec -------------------------------------------------------

def encode_state_delta(state, base=None):
    """Encode ``state`` against ``base`` (the receiver's last-seen
    state). Returns the blob; its first byte is :data:`DELTA_FULL` or
    :data:`DELTA_SPARSE`. Falls back to a full snapshot when there is
    no usable base or the sparse form would not be smaller."""
    state = bytes(state)
    if base is not None and len(base) == len(state):
        new = np.frombuffer(state, dtype=np.uint8)
        old = np.frombuffer(base, dtype=np.uint8)
        changed = np.nonzero(new != old)[0]
        # 5 bytes per changed byte (u32 index + u8 value); only ship
        # sparse when it beats the raw state.
        if 5 * len(changed) < len(state):
            return (_DELTA.pack(DELTA_SPARSE, len(changed))
                    + changed.astype("<u4").tobytes()
                    + new[changed].tobytes())
    return _DELTA.pack(DELTA_FULL, len(state)) + state


def decode_state_delta(blob, base=None, expected_len=None):
    """Inverse of :func:`encode_state_delta`: reconstruct the full
    state. Sparse blobs require ``base``; a missing or wrong-length
    base is the *caller's* epoch bookkeeping failing, reported as
    :class:`WireError` so the transport treats it as corruption."""
    if len(blob) < _DELTA.size:
        raise WireError("truncated state-delta header")
    kind, count = _DELTA.unpack_from(blob, 0)
    pos = _DELTA.size
    if kind == DELTA_FULL:
        if pos + count != len(blob):
            raise WireError("full-state delta length mismatch")
        if expected_len is not None and count != expected_len:
            raise WireError("full state is %d bytes, expected %d"
                            % (count, expected_len))
        return blob[pos:]
    if kind != DELTA_SPARSE:
        raise WireError("unknown state-delta kind %d" % kind)
    if base is None:
        raise WireError("sparse state delta without a base state")
    if expected_len is not None and len(base) != expected_len:
        raise WireError("delta base is %d bytes, expected %d"
                        % (len(base), expected_len))
    if pos + 5 * count != len(blob):
        raise WireError("truncated sparse state delta")
    indices = np.frombuffer(blob, dtype="<u4", count=count, offset=pos)
    pos += 4 * count
    values = np.frombuffer(blob, dtype=np.uint8, count=count, offset=pos)
    state = np.frombuffer(base, dtype=np.uint8).copy()
    if count:
        if int(indices.max()) >= len(state):
            raise WireError("sparse delta index beyond state vector")
        state[indices] = values
    return state.tobytes()


# -- entries -----------------------------------------------------------------

def encode_entry(entry):
    """Serialize one cache entry (struct header + raw arrays)."""
    out = bytearray()
    out += _ENTRY.pack(entry.rip, entry.length, entry.occurrences,
                       1 if entry.halted else 0,
                       len(entry.start_indices), len(entry.end_indices))
    out += np.asarray(entry.start_indices, dtype="<i8").tobytes()
    out += np.asarray(entry.start_values, dtype=np.uint8).tobytes()
    out += np.asarray(entry.end_indices, dtype="<i8").tobytes()
    out += np.asarray(entry.end_values, dtype=np.uint8).tobytes()
    return bytes(out)


def decode_entry(data, pos=0):
    """Inverse of :func:`encode_entry`; returns ``(entry, next_pos)``."""
    if pos + _ENTRY.size > len(data):
        raise WireError("truncated entry header")
    rip, length, occurrences, halted, n_start, n_end = \
        _ENTRY.unpack_from(data, pos)
    pos += _ENTRY.size
    if pos + 9 * n_start + 9 * n_end > len(data):
        raise WireError("truncated entry arrays")
    start_indices = np.frombuffer(data, dtype="<i8", count=n_start,
                                  offset=pos).astype(np.int64)
    pos += 8 * n_start
    start_values = np.frombuffer(data, dtype=np.uint8, count=n_start,
                                 offset=pos).copy()
    pos += n_start
    end_indices = np.frombuffer(data, dtype="<i8", count=n_end,
                                offset=pos).astype(np.int64)
    pos += 8 * n_end
    end_values = np.frombuffer(data, dtype=np.uint8, count=n_end,
                               offset=pos).copy()
    pos += n_end
    entry = CacheEntry(rip, start_indices, start_values, end_indices,
                       end_values, length, occurrences=occurrences,
                       ready_time=0.0, halted=bool(halted))
    return entry, pos


# -- messages ----------------------------------------------------------------

def _frame(msg_type, payload):
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _HEADER.pack(WIRE_MAGIC, WIRE_VERSION, msg_type, crc) + payload


def decode_message(data, max_frame_bytes=None):
    """Validate header and payload checksum; return
    ``(msg_type, payload_offset)``."""
    if max_frame_bytes is not None and len(data) > max_frame_bytes:
        raise WireError("frame of %d bytes exceeds the %d-byte limit"
                        % (len(data), max_frame_bytes))
    if len(data) < _HEADER.size:
        raise WireError("message too short for header")
    magic, version, msg_type, crc = _HEADER.unpack_from(data, 0)
    if magic != WIRE_MAGIC:
        raise WireError("bad magic %r (not a runtime message)" % (magic,))
    if version != WIRE_VERSION:
        raise WireError("wire version %d, this endpoint speaks %d"
                        % (version, WIRE_VERSION))
    if msg_type not in _MSG_TYPES:
        raise WireError("unknown message type %d" % msg_type)
    if zlib.crc32(data[_HEADER.size:]) & 0xFFFFFFFF != crc:
        raise WireError("frame payload failed its checksum")
    return msg_type, _HEADER.size


def encode_task(task_id, rip, occurrences, max_instructions, start_state,
                flags=0):
    payload = _TASK.pack(task_id, rip, occurrences, max_instructions,
                         flags, len(start_state)) + bytes(start_state)
    return _frame(MSG_TASK, payload)


def decode_task(data, pos):
    if pos + _TASK.size > len(data):
        raise WireError("truncated task header")
    task_id, rip, occurrences, budget, flags, state_len = \
        _TASK.unpack_from(data, pos)
    pos += _TASK.size
    if pos + state_len != len(data):
        raise WireError("task state length mismatch")
    return TaskMessage(task_id, rip, occurrences, budget,
                       bytes(data[pos:pos + state_len]), flags=flags)


def result_status(result):
    """Map a :class:`~repro.core.speculation.SpeculationResult` to its
    wire status code (shared by both transports)."""
    if result.fault is not None:
        return RESULT_FAULT
    if result.entry is not None:
        return RESULT_OK
    if result.instructions == 0:
        return RESULT_EMPTY
    return RESULT_BUDGET


def encode_result(task_id, result):
    """Encode a :class:`~repro.core.speculation.SpeculationResult`."""
    status = result_status(result)
    fault = (result.fault or "").encode("utf-8")[:65535]
    entry_blob = b"" if result.entry is None else encode_entry(result.entry)
    payload = _RESULT.pack(task_id, status, result.instructions,
                           1 if result.halted else 0,
                           1 if result.entry is not None else 0,
                           len(fault))
    return _frame(MSG_RESULT, payload + fault + entry_blob)


def decode_result(data, pos):
    if pos + _RESULT.size > len(data):
        raise WireError("truncated result header")
    task_id, status, instructions, halted, has_entry, fault_len = \
        _RESULT.unpack_from(data, pos)
    pos += _RESULT.size
    if pos + fault_len > len(data):
        raise WireError("truncated fault string")
    fault = data[pos:pos + fault_len].decode("utf-8") if fault_len else None
    pos += fault_len
    entry = None
    if has_entry:
        entry, pos = decode_entry(data, pos)
    if pos != len(data):
        raise WireError("trailing bytes in result message")
    return ResultMessage(task_id, status, instructions, bool(halted),
                         fault, entry)


def encode_shutdown():
    return _frame(MSG_SHUTDOWN, b"")


# -- shm control messages ----------------------------------------------------

def _blobref(blob, seq):
    """Pack one blob reference; ``seq is None`` means inline."""
    crc = zlib.crc32(blob) & 0xFFFFFFFF if blob is not None else 0
    length = len(blob) if blob is not None else 0
    if seq is None:
        return _BLOBREF.pack(BLOB_INLINE, 0, length, crc), blob or b""
    return _BLOBREF.pack(BLOB_SHM, seq, length, crc), b""


def encode_task_shm(task_id, rip, occurrences, max_instructions, flags,
                    base_epoch, epoch, blob, seq=None):
    """Control frame for one shm-transport task. ``blob`` is the
    state-delta blob (:func:`encode_state_delta`); ``seq`` its ring
    sequence, or ``None`` to carry it inline."""
    ref, inline = _blobref(blob, seq)
    payload = _TASK_SHM.pack(task_id, rip, occurrences, max_instructions,
                             flags, base_epoch, epoch) + ref + inline
    return _frame(MSG_TASK_SHM, payload)


def decode_task_shm(data, pos):
    if pos + _TASK_SHM.size + _BLOBREF.size > len(data):
        raise WireError("truncated shm task header")
    task_id, rip, occurrences, budget, flags, base_epoch, epoch = \
        _TASK_SHM.unpack_from(data, pos)
    pos += _TASK_SHM.size
    location, seq, blob_len, blob_crc = _BLOBREF.unpack_from(data, pos)
    pos += _BLOBREF.size
    if location not in (BLOB_SHM, BLOB_INLINE):
        raise WireError("unknown blob location %d" % location)
    blob = None
    if location == BLOB_INLINE:
        if pos + blob_len != len(data):
            raise WireError("inline task blob length mismatch")
        blob = bytes(data[pos:pos + blob_len])
        pos += blob_len
    if pos != len(data):
        raise WireError("trailing bytes in shm task message")
    return TaskRefMessage(task_id, rip, occurrences, budget, flags,
                          base_epoch, epoch, location, seq, blob_len,
                          blob_crc, blob=blob)


def encode_result_shm(task_id, status, instructions, halted, fault,
                      blob=None, seq=None):
    """Control frame for one shm-transport result. ``blob`` is the
    serialized entry (:func:`encode_entry`) or ``None``; ``seq`` its
    ring sequence, or ``None`` to carry it inline."""
    fault_bytes = (fault or "").encode("utf-8")[:65535]
    ref, inline = _blobref(blob, seq)
    payload = (_RESULT_SHM.pack(task_id, status, instructions,
                                1 if halted else 0,
                                1 if blob is not None else 0,
                                len(fault_bytes))
               + fault_bytes + ref + inline)
    return _frame(MSG_RESULT_SHM, payload)


def decode_result_shm(data, pos):
    if pos + _RESULT_SHM.size > len(data):
        raise WireError("truncated shm result header")
    task_id, status, instructions, halted, has_entry, fault_len = \
        _RESULT_SHM.unpack_from(data, pos)
    pos += _RESULT_SHM.size
    if pos + fault_len + _BLOBREF.size > len(data):
        raise WireError("truncated shm result fault/ref")
    fault = data[pos:pos + fault_len].decode("utf-8") if fault_len else None
    pos += fault_len
    location, seq, blob_len, blob_crc = _BLOBREF.unpack_from(data, pos)
    pos += _BLOBREF.size
    if location not in (BLOB_SHM, BLOB_INLINE):
        raise WireError("unknown blob location %d" % location)
    if has_entry and blob_len == 0:
        raise WireError("shm result claims an entry but names no blob")
    blob = None
    if location == BLOB_INLINE and has_entry:
        if pos + blob_len != len(data):
            raise WireError("inline result blob length mismatch")
        blob = bytes(data[pos:pos + blob_len])
        pos += blob_len
    if pos != len(data):
        raise WireError("trailing bytes in shm result message")
    return ResultRefMessage(task_id, status, instructions, bool(halted),
                            fault, bool(has_entry), location, seq,
                            blob_len, blob_crc, blob=blob)


def logical_task_bytes(state_len):
    """Size of the inline :data:`MSG_TASK` frame the pipe transport
    would have sent for a state of ``state_len`` bytes — the logical
    baseline the shm transport is measured against."""
    return _HEADER.size + _TASK.size + state_len


def logical_result_bytes(fault_len, entry_len):
    """Size of the inline :data:`MSG_RESULT` frame the pipe transport
    would have sent for this fault string and entry blob."""
    return _HEADER.size + _RESULT.size + fault_len + entry_len


def check_blob(blob, crc):
    """Validate a blob read out of a ring against its control-frame
    CRC; corruption or ring desync surfaces as :class:`WireError`."""
    if zlib.crc32(blob) & 0xFFFFFFFF != crc:
        raise WireError("shm blob failed its checksum")
    return blob
