"""Deterministic fault injection for the multiprocess runtime.

The paper's correctness argument makes speculation disposable: a cache
entry either matches a future state on its dependency bytes or sits
idle, so the runtime must keep making byte-identical progress no matter
how badly the speculative tier misbehaves. This module turns that claim
into something testable. A :class:`FaultPlan` is a *seeded schedule* of
failures injected at the seams the pool already has to survive:

* ``kill`` — SIGKILL a worker right after a task is dispatched to it
  (mid-task crash; exercises EOF detection and respawn);
* ``timeout`` — backdate a task's dispatch time past the deadline so
  the reaper kills the worker (deadline-overrun path);
* ``corrupt`` — flip or truncate bytes of a received result frame
  (exercises wire checksum rejection and the crash-equivalent path);
* ``slow`` — stall ingestion of a result (latency spike; feeds the
  EWMA and the inflight-wait ledger);
* ``drop`` — discard a received result outright (the worker answered,
  the answer is lost; the target must be re-speculated);
* ``taint`` — semantically corrupt a worker-shipped cache entry as it
  is spliced into the main state (wrong end byte, dropped dependency,
  inflated length). Unlike ``corrupt`` this damage is *CRC-valid*: no
  transport check can see it, only the verify subsystem's shadow audit
  (`repro audit`, ``--verify-rate``) catches it;
* resource tier (:data:`RESOURCE_KINDS`) — deterministic exhaustion:
  ``shm_full`` (ring pressure → inline pipe fallback), ``worker_oom``
  (tightened ``RLIMIT_AS`` → contained ``MemoryError``), ``disk_full``
  (injected ``ENOSPC`` into cache/journal writes → prune/suspend), and
  ``fd_exhaust`` (admission probe reports no fd headroom → the daemon
  sheds with the retryable ``overloaded`` code).

The plan is deterministic given its seed: the *decision sequence* (which
dispatch/receive event gets which fault) is fixed up front, so a chaos
run is reproducible modulo OS scheduling. `repro chaos` and the CI
chaos job run benchmarks under seeded plans and assert the final state
stays byte-identical to sequential execution.

Configure via ``RuntimeConfig(fault_plan=FaultPlan(...))``, a spec
string (``RuntimeConfig(fault_plan="seed=42,kill=2,corrupt=1")``), or
the ``REPRO_FAULT_PLAN`` environment variable with the same syntax.
"""

import random
from collections import Counter, deque

import numpy as np

from repro.core.trajectory_cache import CacheEntry
from repro.errors import ReproError

#: Fault kinds injected when a task is dispatched to a worker.
DISPATCH_KINDS = ("kill", "timeout")
#: Fault kinds injected when a result frame is received from a worker.
RECEIVE_KINDS = ("corrupt", "slow", "drop")
#: Fault kinds injected on a decoded cache entry (post-CRC).
ENTRY_KINDS = ("taint",)
#: Fault kinds injected at the service tier (`repro chaos --serve`):
#: SIGKILL the daemon mid-job, drop the client connection mid-poll,
#: truncate the job journal's tail before a restart.
SERVE_KINDS = ("daemon_kill", "conn_drop", "journal_trunc")
#: Resource-exhaustion faults. ``shm_full`` forces a task blob past the
#: ring onto the pipe (inline fallback); ``worker_oom`` tightens a live
#: worker's ``RLIMIT_AS`` so its speculation hits a contained
#: ``MemoryError``; ``disk_full`` injects ``ENOSPC`` into the next
#: cache/journal write; ``fd_exhaust`` makes the daemon's admission
#: probe report zero fd headroom (shed as ``overloaded``). The first
#: two are spent at the pool's dispatch seam, the last two at the
#: daemon's write/admission seams.
RESOURCE_KINDS = ("shm_full", "disk_full", "worker_oom", "fd_exhaust")
ALL_KINDS = (DISPATCH_KINDS + RECEIVE_KINDS + ENTRY_KINDS + SERVE_KINDS
             + RESOURCE_KINDS)


class FaultPlanError(ReproError):
    """A fault-plan spec string could not be parsed."""


class FaultPlan:
    """A seeded, finite schedule of runtime faults.

    ``kills``/``timeouts`` are spent on dispatch events and
    ``corruptions``/``slows``/``drops`` on receive events, one fault per
    eligible event. The first ``start_after`` events of each side are
    left clean (so the run establishes some healthy baseline), after
    which every ``spacing``-th event consumes the next fault from a
    seeded shuffle of the remaining quota. ``injected`` counts what was
    actually spent — tests assert against it.
    """

    def __init__(self, seed=0, kills=0, timeouts=0, corruptions=0,
                 slows=0, drops=0, taints=0, daemon_kills=0, conn_drops=0,
                 journal_truncs=0, shm_fulls=0, disk_fulls=0,
                 worker_ooms=0, fd_exhausts=0, slow_seconds=0.05,
                 start_after=2, spacing=2):
        if min(kills, timeouts, corruptions, slows, drops, taints,
               daemon_kills, conn_drops, journal_truncs, shm_fulls,
               disk_fulls, worker_ooms, fd_exhausts) < 0:
            raise FaultPlanError("fault quotas must be >= 0")
        if spacing < 1:
            raise FaultPlanError("spacing must be >= 1")
        self.seed = seed
        self.kills = kills
        self.timeouts = timeouts
        self.corruptions = corruptions
        self.slows = slows
        self.drops = drops
        self.taints = taints
        self.daemon_kills = daemon_kills
        self.conn_drops = conn_drops
        self.journal_truncs = journal_truncs
        self.shm_fulls = shm_fulls
        self.disk_fulls = disk_fulls
        self.worker_ooms = worker_ooms
        self.fd_exhausts = fd_exhausts
        self.slow_seconds = slow_seconds
        self.start_after = start_after
        self.spacing = spacing
        rng = random.Random(seed)
        dispatch = ["kill"] * kills + ["timeout"] * timeouts
        receive = (["corrupt"] * corruptions + ["slow"] * slows
                   + ["drop"] * drops)
        serve = (["daemon_kill"] * daemon_kills + ["conn_drop"] * conn_drops
                 + ["journal_trunc"] * journal_truncs)
        res = (["shm_full"] * shm_fulls + ["disk_full"] * disk_fulls
               + ["worker_oom"] * worker_ooms + ["fd_exhaust"] * fd_exhausts)
        rng.shuffle(dispatch)
        rng.shuffle(receive)
        rng.shuffle(serve)
        rng.shuffle(res)
        self._dispatch_queue = deque(dispatch)
        self._receive_queue = deque(receive)
        self._entry_queue = deque(["taint"] * taints)
        self._serve_queue = deque(serve)
        self._resource_queue = deque(res)
        self._rng = rng  # drives corruption shapes, deterministically
        self._dispatch_events = 0
        self._receive_events = 0
        self._entry_events = 0
        self._serve_events = 0
        self._resource_events = 0
        self.injected = Counter()

    # -- scheduling ----------------------------------------------------------

    def _next(self, queue, event_index, allowed):
        if not queue:
            return None
        if event_index < self.start_after:
            return None
        if (event_index - self.start_after) % self.spacing != 0:
            return None
        # Pop the first allowed kind; an unallowed head (e.g. a timeout
        # fault when deadlines are disabled) is skipped for this event
        # but stays queued.
        for __ in range(len(queue)):
            kind = queue.popleft()
            if allowed is None or kind in allowed:
                self.injected[kind] += 1
                return kind
            queue.append(kind)
        return None

    def next_dispatch_fault(self, allowed=None):
        """Fault to apply to this dispatch event (or ``None``)."""
        kind = self._next(self._dispatch_queue, self._dispatch_events,
                          allowed)
        self._dispatch_events += 1
        return kind

    def next_receive_fault(self, allowed=None):
        """Fault to apply to this received result frame (or ``None``)."""
        kind = self._next(self._receive_queue, self._receive_events,
                          allowed)
        self._receive_events += 1
        return kind

    def next_entry_fault(self):
        """Fault to apply to this spliced cache entry (or ``None``).

        Counted on its own event stream — an event is one *splice* of a
        worker-shipped entry into the main state. Splices follow the
        deterministic main-thread trajectory (arrival order does not:
        OS scheduling perturbs it, and a taint spent on an entry that
        never splices is an unobservable fault), so a ``taint`` quota
        always lands where the verify subsystem can catch it.
        """
        kind = self._next(self._entry_queue, self._entry_events, None)
        self._entry_events += 1
        return kind

    def next_serve_fault(self, allowed=None):
        """Fault to apply to this service-tier event (or ``None``).

        An event is one observable checkpoint of the serve chaos
        driver — a client poll round, typically — so a plan like
        ``daemon_kill=1,journal_trunc=1`` interleaves its faults at
        seeded, reproducible points of a run, the same contract the
        worker-tier streams have.
        """
        kind = self._next(self._serve_queue, self._serve_events, allowed)
        self._serve_events += 1
        return kind

    def next_resource_fault(self, allowed=None):
        """Fault to apply to this resource checkpoint (or ``None``).

        An event is one observable budget decision: a pool dispatch
        (``shm_full``/``worker_oom`` eligible), a daemon durability
        write (``disk_full``), or a daemon admission probe
        (``fd_exhaust``). Each checkpoint passes its own ``allowed``
        set; an ineligible head stays queued for a checkpoint that can
        spend it, the same contract the other streams keep.
        """
        kind = self._next(self._resource_queue, self._resource_events,
                          allowed)
        self._resource_events += 1
        return kind

    def truncate_tail_bytes(self, size):
        """How many bytes a ``journal_trunc`` fault shears off a file
        of ``size`` bytes: at least 1, at most the whole file, chosen
        by the plan RNG so the torn tail lands at seeded offsets."""
        if size <= 1:
            return size
        return self._rng.randrange(1, min(size, 4096) + 1)

    def corrupt_bytes(self, data):
        """Deterministically damage one frame.

        Alternates (by plan RNG) between truncation and a byte flip;
        either is guaranteed to be rejected by the wire layer — a
        truncated frame fails structural checks and a flipped byte
        fails the header checksum (or the magic/version fields
        themselves).
        """
        if len(data) < 2:
            return b""
        if self._rng.random() < 0.5:
            return bytes(data[:self._rng.randrange(1, len(data))])
        mutated = bytearray(data)
        mutated[self._rng.randrange(len(mutated))] ^= 0xFF
        return bytes(mutated)

    def taint_entry(self, entry):
        """Deterministically corrupt one cache entry's *semantics*.

        Rotates (by plan RNG) through three shapes of the bug class the
        shadow audit exists for: a wrong end byte (bad write-set value),
        a dropped start index (under-approximated dependency set), and
        an inflated instruction count (wrong claimed length). The
        returned entry is structurally valid and CRC-clean on the wire.
        """
        start_indices = np.array(entry.start_indices, dtype=np.int64)
        start_values = np.array(entry.start_values, dtype=np.uint8)
        end_indices = np.array(entry.end_indices, dtype=np.int64)
        end_values = np.array(entry.end_values, dtype=np.uint8)
        length = entry.length
        mode = self._rng.randrange(3)
        if mode == 0 and len(end_values):
            end_values[self._rng.randrange(len(end_values))] ^= 0x5A
        elif mode == 1 and len(start_indices) > 1:
            drop = self._rng.randrange(len(start_indices))
            mask = np.arange(len(start_indices)) != drop
            start_indices = start_indices[mask]
            start_values = start_values[mask]
        else:
            length += 1
        return CacheEntry(entry.rip, start_indices, start_values,
                          end_indices, end_values, length,
                          occurrences=entry.occurrences,
                          ready_time=entry.ready_time,
                          halted=entry.halted)

    # -- introspection -------------------------------------------------------

    @property
    def exhausted(self):
        """Every scheduled fault has been injected."""
        return (not self._dispatch_queue and not self._receive_queue
                and not self._entry_queue and not self._serve_queue
                and not self._resource_queue)

    @property
    def pending(self):
        """Faults scheduled but not yet injected, by kind."""
        return (Counter(self._dispatch_queue)
                + Counter(self._receive_queue)
                + Counter(self._entry_queue)
                + Counter(self._serve_queue)
                + Counter(self._resource_queue))

    def as_dict(self):
        return {
            "seed": self.seed,
            "scheduled": {"kill": self.kills, "timeout": self.timeouts,
                          "corrupt": self.corruptions, "slow": self.slows,
                          "drop": self.drops, "taint": self.taints,
                          "daemon_kill": self.daemon_kills,
                          "conn_drop": self.conn_drops,
                          "journal_trunc": self.journal_truncs,
                          "shm_full": self.shm_fulls,
                          "disk_full": self.disk_fulls,
                          "worker_oom": self.worker_ooms,
                          "fd_exhaust": self.fd_exhausts},
            "injected": dict(self.injected),
            "pending": dict(self.pending),
        }

    # -- spec strings --------------------------------------------------------

    _SPEC_KEYS = {
        "seed": ("seed", int),
        "kill": ("kills", int),
        "timeout": ("timeouts", int),
        "corrupt": ("corruptions", int),
        "slow": ("slows", int),
        "drop": ("drops", int),
        "taint": ("taints", int),
        "daemon_kill": ("daemon_kills", int),
        "conn_drop": ("conn_drops", int),
        "journal_trunc": ("journal_truncs", int),
        "shm_full": ("shm_fulls", int),
        "disk_full": ("disk_fulls", int),
        "worker_oom": ("worker_ooms", int),
        "fd_exhaust": ("fd_exhausts", int),
        "slow_ms": ("slow_seconds", lambda v: int(v) / 1000.0),
        "start": ("start_after", int),
        "spacing": ("spacing", int),
    }

    @classmethod
    def parse(cls, spec):
        """Build a plan from ``"seed=42,kill=2,timeout=1,corrupt=1"``."""
        kwargs = {}
        for item in str(spec).split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise FaultPlanError("bad fault-plan item %r (want key=value)"
                                     % item)
            key, __, value = item.partition("=")
            entry = cls._SPEC_KEYS.get(key.strip())
            if entry is None:
                raise FaultPlanError(
                    "unknown fault-plan key %r (known: %s)"
                    % (key.strip(), ", ".join(sorted(cls._SPEC_KEYS))))
            name, convert = entry
            try:
                kwargs[name] = convert(value.strip())
            except ValueError:
                raise FaultPlanError("bad value %r for fault-plan key %r"
                                     % (value.strip(), key.strip()))
        return cls(**kwargs)

    def __repr__(self):
        return ("FaultPlan(seed=%d, kill=%d, timeout=%d, corrupt=%d, "
                "slow=%d, drop=%d, taint=%d, daemon_kill=%d, conn_drop=%d, "
                "journal_trunc=%d, shm_full=%d, disk_full=%d, "
                "worker_oom=%d, fd_exhaust=%d, injected=%s)"
                % (self.seed, self.kills, self.timeouts, self.corruptions,
                   self.slows, self.drops, self.taints, self.daemon_kills,
                   self.conn_drops, self.journal_truncs, self.shm_fulls,
                   self.disk_fulls, self.worker_ooms, self.fd_exhausts,
                   dict(self.injected)))


def resolve_fault_plan(value):
    """Normalize a config value: plan, spec string, or ``None``."""
    if value is None:
        return None
    if isinstance(value, FaultPlan):
        return value
    return FaultPlan.parse(value)
