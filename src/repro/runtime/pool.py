"""A pool of persistent speculation workers on real cores.

The pool owns up to N OS processes (:func:`~repro.runtime.worker.worker_main`)
connected by duplex pipes. The engine talks to it through four calls:
:meth:`WorkerPool.submit` (assign a speculation to an idle slot, with
backpressure when every worker is at its queue depth), :meth:`poll`
(collect finished results, enforce per-task deadlines, detect dead
workers), :meth:`speculation_allowed` (the supervisor's verdict on
whether dispatching is currently sane), and :meth:`shutdown`.

Failure policy — speculation is *disposable* work, so every failure
mode degrades to "that task produced nothing":

* a worker that crashes (killed, segfaults the interpreter, OOM) is
  detected by pipe EOF / liveness and its in-flight tasks are reported
  as :data:`TASK_CRASHED`;
* a worker whose oldest task outlives the deadline is killed outright
  (a stuck pipe or runaway loop must not stall the engine) and its
  tasks are reported as :data:`TASK_TIMED_OUT`;
* a frame that is oversized, fails its checksum, or violates the
  protocol is treated exactly like a crash — the sender cannot be
  trusted, so it is killed and its queue reported crashed;
* a worker that reports a fault or exhausted budget yields
  :data:`TASK_FAILED` — the predicted state was garbage, which the
  paper's design explicitly tolerates.

What happens to the failed *slot* is the supervisor's decision
(:mod:`repro.runtime.supervisor`): respawn while the budget lasts,
quarantine with exponential backoff when a slot keeps failing (the
pool shrinks instead of respawn-storming), retire it for good once
the budget is spent. The engine decides whether to re-speculate; the
pool only guarantees that every submitted task eventually produces
exactly one outcome.

Transport — under ``RuntimeConfig.transport == "shm"`` the pool opens
two :class:`~repro.runtime.shm.ShmRing` segments per worker (task
ring: engine produces, worker consumes; result ring: the reverse) and
the pipes carry only small control frames naming ring blobs by
``(seq, length, CRC32)``. Start states ship delta-compressed against
the worker's last reconstructed state: the pool tracks, per worker,
the *base state* it last successfully sent and a monotonically
increasing *epoch* naming it, commits both only after a successful
send, and clears them whenever the worker is respawned or answers
:data:`TASK_STALE` (epoch mismatch) — so the next task automatically
carries a full snapshot. The pool owns both segments' lifecycles:
rings are unlinked on crash/respawn, quarantine, retirement, and
shutdown, and an atexit sweep in :mod:`repro.runtime.shm` reaps
whatever an unclean exit leaves. ``transport == "pipe"`` keeps the
original inline-payload frames end to end.

A seeded :class:`~repro.runtime.faults.FaultPlan` (via
``RuntimeConfig.fault_plan`` or ``REPRO_FAULT_PLAN``) injects failures
at these exact seams — dispatch-time kills and deadline overruns,
receive-time corruption, latency, and result drops — so every path
above is exercised deterministically by `repro chaos` and the tests.
"""

import itertools
import multiprocessing
import os
import time
from collections import deque
from multiprocessing.connection import wait as _conn_wait

from repro.errors import ReproError
from repro.runtime import shm, wire
from repro.runtime.config import RuntimeConfig, default_start_method
from repro.runtime.stats import RuntimeStats
from repro.runtime.supervisor import RESPAWN, Supervisor
from repro.runtime.worker import OOM_FAULT_PREFIX, worker_main

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None

#: Task outcome statuses (pool-level view; the wire-level OK/FAULT/
#: BUDGET/EMPTY collapse into OK vs FAILED here).
TASK_OK = "ok"
TASK_FAILED = "failed"
TASK_TIMED_OUT = "timed-out"
TASK_CRASHED = "crashed"
TASK_STALE = "stale"  # shm epoch mismatch: not executed, re-dispatch


class PoolError(ReproError):
    """The worker pool was misused."""


class SpeculationTask:
    """One dispatched speculation, as the engine sees it."""

    __slots__ = ("task_id", "rip", "occurrences", "max_instructions",
                 "meta", "dispatch_time", "payload_bytes", "worker",
                 "audit")

    def __init__(self, task_id, rip, occurrences, max_instructions, meta,
                 dispatch_time, payload_bytes, worker, audit=False):
        self.task_id = task_id
        self.rip = rip
        self.occurrences = occurrences
        self.max_instructions = max_instructions
        self.meta = meta  # opaque engine tag (e.g. the coverage key)
        self.dispatch_time = dispatch_time
        self.payload_bytes = payload_bytes
        self.worker = worker  # worker index it ran on
        self.audit = audit  # shadow-audit replay, not a speculation

    def __repr__(self):
        return "SpeculationTask(id=%d, rip=0x%x, worker=%d)" % (
            self.task_id, self.rip, self.worker)


class TaskOutcome:
    """One finished task: the submitted task plus what came back."""

    __slots__ = ("task", "status", "entry", "instructions", "halted",
                 "fault", "duration")

    def __init__(self, task, status, entry=None, instructions=0,
                 halted=False, fault=None, duration=0.0):
        self.task = task
        self.status = status
        self.entry = entry
        self.instructions = instructions
        self.halted = halted
        self.fault = fault
        self.duration = duration  # dispatch -> completion wall seconds

    @property
    def ok(self):
        return self.status == TASK_OK and self.entry is not None

    def __repr__(self):
        return "TaskOutcome(id=%d, status=%s, entry=%s)" % (
            self.task.task_id, self.status, self.entry is not None)


class _Worker:
    __slots__ = ("index", "proc", "conn", "inflight", "task_ring",
                 "result_ring", "base_state", "epoch")

    def __init__(self, index, proc, conn, task_ring=None, result_ring=None):
        self.index = index
        self.proc = proc
        self.conn = conn
        self.inflight = deque()  # SpeculationTasks, FIFO per worker
        self.task_ring = task_ring  # engine produces (shm transport)
        self.result_ring = result_ring  # engine consumes
        # Delta bookkeeping (engine's view, committed only after a
        # successful send): the start state this worker last
        # reconstructed, and the epoch naming it. None/0 means "no
        # usable base" — the next task ships a full snapshot.
        self.base_state = None
        self.epoch = 0

    def close_rings(self):
        """Unlink both rings (pool-owned; idempotent)."""
        for ring in (self.task_ring, self.result_ring):
            if ring is not None:
                ring.unlink()


class WorkerPool:
    """Persistent multiprocess speculation workers for one program.

    ``self._workers`` is a fixed list of *slots*; a slot holds a live
    :class:`_Worker` or ``None`` while quarantined/retired, so the pool
    can shrink and re-grow without renumbering anything.
    """

    def __init__(self, program, config=None, stats=None):
        self.config = config or RuntimeConfig()
        if self.config.n_workers < 1:
            raise PoolError("n_workers must be >= 1")
        self.stats = stats or RuntimeStats()
        self.supervisor = Supervisor(self.config, self.stats)
        self.faults = self.config.resolve_fault_plan()
        self._program_payload = program.to_dict()
        self._fast_path = None  # workers follow REPRO_FAST_PATH by default
        self._ctx = multiprocessing.get_context(
            self.config.start_method or default_start_method())
        self._task_ids = itertools.count(1)
        self._deferred = []  # outcomes produced outside poll (submit-time)
        self._closed = False
        self._use_shm = self.config.transport == "shm"
        self._parked = set()  # slots shrunk away by the autoscaler
        self.autoscale_target = None  # live-worker target, None = static
        self._workers = [self._spawn(i) for i in range(self.config.n_workers)]

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, index):
        task_ring = result_ring = shm_names = None
        if self._use_shm:
            # Ring allocation failing (tmpfs exhausted, segment quota)
            # must not fail the spawn: this worker degrades to pipe
            # transport — correct, just slower — and the pressure is
            # reported. A respawn retries rings, so the degradation
            # heals itself once /dev/shm space returns.
            try:
                task_ring = shm.create_ring(self.config.shm_ring_bytes)
                result_ring = shm.create_ring(self.config.shm_ring_bytes)
                shm_names = (task_ring.name, result_ring.name)
            except (shm.ShmError, OSError):
                for ring in (task_ring, result_ring):
                    if ring is not None:
                        ring.unlink()
                task_ring = result_ring = shm_names = None
                self.stats.shm_alloc_failures += 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self._program_payload, self._fast_path,
                  self.config.max_frame_bytes, shm_names, os.getpid(),
                  self.config.worker_rlimit_as_bytes),
            name="repro-spec-%d" % index, daemon=True)
        proc.start()
        child_conn.close()
        return _Worker(index, proc, parent_conn, task_ring=task_ring,
                       result_ring=result_ring)

    def _live(self):
        return [w for w in self._workers if w is not None]

    def _fail_worker(self, worker, status):
        """One worker failed: report its queue, let the supervisor rule.

        Returns the outcomes for its in-flight tasks. The slot is
        respawned, left empty (quarantine — re-admitted by
        :meth:`_admit_due` after backoff), or retired, per the
        supervisor's directive.
        """
        outcomes = []
        now = time.monotonic()
        counter = ("tasks_crashed" if status == TASK_CRASHED
                   else "tasks_timed_out")
        for task in worker.inflight:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)
            outcomes.append(TaskOutcome(task, status,
                                        duration=now - task.dispatch_time))
        worker.inflight.clear()
        self._teardown_worker(worker)
        kind = "timeout" if status == TASK_TIMED_OUT else "crash"
        directive = self.supervisor.note_failure(worker.index, kind)
        if directive == RESPAWN and not self._closed:
            # Never respawn into a shut-down pool: a concurrent
            # shutdown (the serve watchdog's last-resort escalation)
            # may close conns under a polling engine, and the resulting
            # crash detections must not leak fresh workers.
            self.stats.workers_respawned += 1
            self._workers[worker.index] = self._spawn(worker.index)
        else:  # quarantined or retired: the pool shrinks for now
            self._workers[worker.index] = None
        return outcomes

    def _teardown_worker(self, worker):
        """Release one worker's process and transport — the shared tail
        of every removal path (failure, quarantine, retirement, park).
        The rings die with the worker: its cursors and delta base are
        untrustworthy now, and a replacement starts from fresh segments
        and a full-snapshot first task; unlinking here is what keeps a
        removed worker from leaking a /dev/shm segment."""
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.proc.is_alive():
            worker.proc.kill()
        worker.proc.join(timeout=5.0)
        worker.close_rings()

    def _admit_due(self):
        """Respawn quarantined slots whose backoff has expired.

        A slot the autoscaler shrank past stays out: readmitting a
        quarantined worker over ``autoscale_target`` would have the
        supervisor fighting the scaling policy (its backoff keeps
        ticking, so the slot remains due once the target rises).
        """
        if self._closed:
            return
        for slot in self.supervisor.due_readmissions():
            if self._workers[slot] is not None:
                continue
            if self.autoscale_target is not None \
                    and self.active_workers >= self.autoscale_target:
                continue
            if self.supervisor.authorize_readmission(slot):
                self.stats.workers_respawned += 1
                self._workers[slot] = self._spawn(slot)

    def speculation_allowed(self):
        """Supervisor verdict: may the engine dispatch right now?

        Also the re-admission heartbeat — called every boundary, it
        brings quarantined slots back as their backoff expires.
        """
        if self._closed:
            return False
        self._admit_due()
        return self.supervisor.speculation_allowed(
            self.active_workers, parked=len(self._parked))

    # -- elastic membership --------------------------------------------------

    def grow(self, n=1):
        """Bring up to ``n`` more live workers online; returns how many
        actually started. Parked slots are refilled first (lowest index
        — slot numbering stays dense), then fresh slots are appended.
        A grown worker needs no special bootstrap: its delta base is
        empty, so its first task ships a full state snapshot — the
        delta protocol's standing fallback."""
        added = 0
        for __ in range(max(0, n)):
            if self._closed:
                break
            if self._parked:
                index = min(self._parked)
                self._parked.discard(index)
                self._workers[index] = self._spawn(index)
            else:
                index = len(self._workers)
                self._workers.append(self._spawn(index))
            self.stats.workers_grown += 1
            added += 1
        return added

    def retire(self, n=1):
        """Park up to ``n`` live workers; returns how many were parked.

        Victims are the idlest first (fewest in-flight tasks, highest
        index breaking ties), so a shrink usually costs nothing. A
        parked worker goes through the same teardown as a retirement —
        process killed, pipe closed, rings unlinked, slot emptied — but
        carries no supervision penalty, and its in-flight tasks are
        absorbed as :data:`TASK_STALE` outcomes (never executed as far
        as the engine is concerned: the targets stay uncovered and are
        re-dispatched if still predicted).
        """
        parked = 0
        for __ in range(max(0, n)):
            live = self._live()
            if not live:
                break
            worker = min(live, key=lambda w: (len(w.inflight), -w.index))
            self._deferred.extend(self._park_worker(worker))
            parked += 1
        return parked

    def _park_worker(self, worker):
        outcomes = []
        now = time.monotonic()
        for task in worker.inflight:
            self.stats.tasks_parked += 1
            outcomes.append(TaskOutcome(task, TASK_STALE,
                                        duration=now - task.dispatch_time))
        worker.inflight.clear()
        # Politeness first: an idle worker blocked on its pipe exits on
        # the shutdown frame before the teardown kill lands.
        try:
            worker.conn.send_bytes(wire.encode_shutdown())
        except (OSError, ValueError, BrokenPipeError):
            pass
        self._teardown_worker(worker)
        self._workers[worker.index] = None
        self._parked.add(worker.index)
        self.stats.workers_parked += 1
        return outcomes

    def resize(self, target):
        """Steer the live worker count toward ``target``; returns
        ``(grown, parked)``. Records the target so quarantine
        readmissions do not refill slots the policy shrank away."""
        target = max(0, int(target))
        self.autoscale_target = target
        active = self.active_workers
        if target > active:
            return self.grow(target - active), 0
        if target < active:
            return 0, self.retire(active - target)
        return 0, 0

    def quiesce(self, timeout=5.0):
        """Absorb every in-flight task so the pool can be reused.

        A shared pool (``repro serve`` runs many jobs on one pool) must
        not leak one job's straggler results into the next job's drain
        loop — stale ``meta`` keys would poison the next engine's
        coverage bookkeeping. Polls until nothing is in flight or the
        timeout expires; whatever is still stuck after that is failed
        through the normal timeout path (worker killed and respawned),
        so the next job always starts against an empty queue. Returns
        the absorbed outcomes — their OK entries are still valid facts
        about this pool's program, so a caller may bank them.
        """
        outcomes = []
        deadline = time.monotonic() + max(0.0, timeout)
        while self.inflight_count() and time.monotonic() < deadline:
            outcomes.extend(self.poll(timeout=0.05))
        for worker in self._live():
            if worker.inflight:
                outcomes.extend(self._fail_worker(worker, TASK_TIMED_OUT))
        return outcomes

    def shutdown(self):
        """Stop every worker; polite first, then by force. Idempotent."""
        if self._closed:
            return
        self._closed = True
        frame = wire.encode_shutdown()
        for worker in self._live():
            try:
                worker.conn.send_bytes(frame)
            except (OSError, ValueError, BrokenPipeError):
                continue
            self.stats.bytes_sent += len(frame)
            self.stats.logical_bytes_sent += len(frame)
        deadline = time.monotonic() + 2.0
        for worker in self._live():
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.close_rings()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()

    # -- introspection -------------------------------------------------------

    @property
    def n_workers(self):
        """Configured slot count (the pool's nominal width)."""
        return len(self._workers)

    @property
    def active_workers(self):
        """Slots currently holding a live worker."""
        return len(self._live())

    @property
    def parked_workers(self):
        """Slots the autoscaler has deliberately shrunk away."""
        return len(self._parked)

    def idle_slots(self):
        """How many more tasks :meth:`submit` would accept right now."""
        depth = self.config.queue_depth
        return sum(max(0, depth - len(w.inflight)) for w in self._live())

    def inflight_count(self):
        """Dispatched tasks whose outcome the caller has not seen yet.

        Counts deferred outcomes (produced outside :meth:`poll` — a
        park absorbing in-flight tasks, a send failure at submit time)
        as still in flight: a drain loop keyed on this must not stop
        while undelivered outcomes sit in the queue, and ``quiesce``
        must not let them leak into the next job's poll."""
        return sum(len(w.inflight) for w in self._live()) \
            + len(self._deferred)

    def worker_pids(self):
        """Live worker PIDs (fault-injection tests kill these)."""
        return [w.proc.pid for w in self._live()]

    def kill_workers(self):
        """SIGKILL every live worker process; returns how many died.

        The one pool mutation safe from *another* thread (the serve
        watchdog): it only signals processes — it does not touch
        inflight deques, pipes, or rings. The owning engine's poll loop
        detects the deaths as EOF, reports the in-flight tasks crashed,
        and lets the supervisor respawn the slots — exactly the
        external-SIGKILL path the chaos tests already exercise. The
        point is to unwedge an engine stuck waiting on a hung worker so
        a pending cancel can land at the next boundary.
        """
        killed = 0
        for worker in self._live():
            if worker.proc.is_alive():
                worker.proc.kill()
                killed += 1
        return killed

    # -- dispatch ------------------------------------------------------------

    def submit(self, rip, occurrences, max_instructions, start_state,
               meta=None, audit=False):
        """Assign a speculation to the least-loaded live worker.

        ``audit=True`` ships a shadow-audit replay instead (the worker
        re-executes ``max_instructions`` steps on the reference tier;
        the outcome is routed to the auditor, not the cache).

        Returns the :class:`SpeculationTask`, or ``None`` when every
        live worker is at its queue depth — or none are live at all
        (backpressure — the caller simply tries again at the next
        superstep boundary).
        """
        if self._closed:
            raise PoolError("submit on a shut-down pool")
        task_id = next(self._task_ids)
        flags = wire.FLAG_AUDIT if audit else 0
        state_bytes = bytes(start_state)
        # A worker found dead at dispatch time is failed through the
        # normal supervision path (its outcomes surface on the next
        # poll) and the dispatch retries on whatever is still live.
        for __ in range(self.n_workers + 1):
            live = self._live()
            if not live:
                self.stats.dispatch_backpressure += 1
                return None
            worker = min(live, key=lambda w: len(w.inflight))
            if len(worker.inflight) >= self.config.queue_depth:
                self.stats.dispatch_backpressure += 1
                return None
            # A worker whose rings failed to allocate (shm pressure at
            # spawn time) runs on pipe transport even in an shm pool.
            use_shm = self._use_shm and worker.task_ring is not None
            force_inline = self._inject_resource_fault(worker, use_shm)
            if use_shm:
                payload = self._encode_task_shm(worker, task_id, rip,
                                                occurrences,
                                                max_instructions,
                                                state_bytes, flags,
                                                force_inline=force_inline)
            else:
                payload = wire.encode_task(task_id, rip, occurrences,
                                           max_instructions, state_bytes,
                                           flags=flags)
            try:
                worker.conn.send_bytes(payload)
            except (OSError, ValueError, BrokenPipeError):
                self._deferred.extend(self._fail_worker(worker, TASK_CRASHED))
                continue
            if use_shm:
                # Commit the delta base only now: a failed send means
                # the worker never saw the blob, so the old base (or
                # none, after the respawn above) stays authoritative.
                worker.base_state = state_bytes
                worker.epoch += 1
            else:
                self.stats.state_bytes_shipped += len(state_bytes)
                self.stats.states_full += 1
            self.stats.state_bytes_raw += len(state_bytes)
            self.stats.logical_bytes_sent += \
                wire.logical_task_bytes(len(state_bytes))
            task = SpeculationTask(task_id, rip, occurrences,
                                   max_instructions, meta, time.monotonic(),
                                   len(payload), worker.index, audit=audit)
            worker.inflight.append(task)
            self.stats.tasks_dispatched += 1
            self.stats.bytes_sent += len(payload)
            self._inject_dispatch_fault(worker, task)
            return task
        return None

    def _encode_task_shm(self, worker, task_id, rip, occurrences,
                         max_instructions, state_bytes, flags,
                         force_inline=False):
        """Encode one shm-transport task: push the delta blob into the
        worker's task ring and build the control frame. A blob the ring
        cannot take right now — full ring, oversized blob, or a chaos
        ``shm_full`` fault (``force_inline``) — travels inline on the
        pipe instead: shm pressure degrades throughput, never refuses
        the dispatch. The ledgers stay reconcilable either way:
        ``state_bytes_shipped == shm_bytes_written + shm_fallback_bytes``.
        """
        blob = wire.encode_state_delta(state_bytes, base=worker.base_state)
        seq = None
        if not force_inline and len(blob) <= worker.task_ring.capacity:
            seq = worker.task_ring.try_push(blob)
            if seq is None:
                self.stats.ring_full_backpressure += 1
        if seq is None:
            self.stats.shm_fallbacks += 1
            self.stats.shm_fallback_bytes += len(blob)
        else:
            self.stats.shm_bytes_written += len(blob)
        if blob[0] == wire.DELTA_SPARSE:
            self.stats.states_delta += 1
        else:
            self.stats.states_full += 1
        self.stats.state_bytes_shipped += len(blob)
        return wire.encode_task_shm(task_id, rip, occurrences,
                                    max_instructions, flags,
                                    worker.epoch, worker.epoch + 1,
                                    blob, seq=seq)

    def _inject_dispatch_fault(self, worker, task):
        if self.faults is None:
            return
        allowed = ["kill"]
        if self.config.task_timeout_seconds is not None:
            allowed.append("timeout")
        kind = self.faults.next_dispatch_fault(allowed)
        if kind is None:
            return
        self.stats.faults_injected += 1
        if kind == "kill":
            worker.proc.kill()  # detected as EOF/liveness on the next poll
        elif kind == "timeout":
            # Backdate past the deadline so the reaper fires the real
            # deadline-overrun path (kill + timed-out outcomes).
            task.dispatch_time -= self.config.task_timeout_seconds + 1.0

    def _inject_resource_fault(self, worker, use_shm):
        """Pre-dispatch resource-tier fault decision. Returns ``True``
        when this task's blob must skip the ring (``shm_full``); a
        ``worker_oom`` tightens the target worker's memory cap before
        the task lands so it fails as a contained MemoryError (or, with
        no ``prlimit`` on this platform, as a plain worker crash)."""
        if self.faults is None:
            return False
        allowed = ["worker_oom"]
        if use_shm:
            allowed.append("shm_full")
        kind = self.faults.next_resource_fault(allowed)
        if kind is None:
            return False
        self.stats.faults_injected += 1
        if kind == "shm_full":
            return True
        self._tighten_worker_memory(worker)
        return False

    def _tighten_worker_memory(self, worker):
        """Chaos ``worker_oom``: clamp the live worker's ``RLIMIT_AS``
        soft limit so its next allocation burst raises MemoryError. The
        worker's containment path restores its own soft limit (the hard
        limit is left untouched), so the slot heals after one contained
        failure. Platforms without ``prlimit`` fall back to an outright
        kill — the crash path is the same byte-identical-safe outcome,
        just less surgical."""
        if (_resource is not None and hasattr(_resource, "prlimit")
                and worker.proc.pid):
            try:
                __, hard = _resource.prlimit(worker.proc.pid,
                                             _resource.RLIMIT_AS)
                soft = 32 << 20
                if hard != _resource.RLIM_INFINITY:
                    soft = min(soft, hard)
                _resource.prlimit(worker.proc.pid, _resource.RLIMIT_AS,
                                  (soft, hard))
                return
            except (OSError, ValueError):
                pass
        worker.proc.kill()

    # -- collection ----------------------------------------------------------

    def poll(self, timeout=0.0):
        """Collect every outcome available within ``timeout`` seconds.

        Always returns promptly once at least one outcome (result,
        crash, or deadline kill) has been produced; an empty list means
        the timeout elapsed with all workers still busy or idle.
        """
        self._admit_due()
        outcomes = []
        if self._deferred:
            outcomes.extend(self._deferred)
            self._deferred = []
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            outcomes.extend(self._reap_expired())
            busy = {w.conn: w for w in self._live() if w.inflight}
            if not busy:
                break
            remaining = deadline - time.monotonic()
            if outcomes:
                remaining = 0.0  # drain whatever is ready, don't linger
            if remaining < 0:
                remaining = 0.0
            # Bound each wait so deadline kills stay responsive even
            # when a worker hangs without closing its pipe.
            ready = _conn_wait(list(busy), timeout=min(remaining, 0.05))
            for conn in ready:
                worker = busy[conn]
                if self._workers[worker.index] is not worker:
                    continue  # already failed earlier in this batch
                try:
                    data = conn.recv_bytes(self.config.max_frame_bytes)
                except (EOFError, OSError):
                    outcomes.extend(self._fail_worker(worker, TASK_CRASHED))
                    continue
                # Physical bytes are counted at the transport boundary,
                # before fault injection and decoding, so corrupt,
                # dropped, and rejected frames all count — symmetric
                # with bytes_sent.
                self.stats.bytes_received += len(data)
                data, dropped = self._inject_receive_fault(worker, data,
                                                           outcomes)
                if dropped:
                    continue
                try:
                    outcomes.append(self._ingest(worker, data))
                except (wire.WireError, shm.ShmError):
                    # Corrupt or protocol-violating frame — or a ring
                    # read that desynced/failed its checksum: the
                    # sender cannot be trusted any further —
                    # worker-crash path.
                    self.stats.frames_rejected += 1
                    outcomes.extend(self._fail_worker(worker, TASK_CRASHED))
            if not ready and time.monotonic() >= deadline:
                break
            if outcomes and not ready:
                break
        return outcomes

    def _inject_receive_fault(self, worker, data, outcomes):
        """Apply a scheduled receive-side fault. Returns
        ``(data, dropped)``; corrupt mutates, slow stalls, drop
        discards the frame (the result is lost, the task reported
        crashed so the engine re-speculates)."""
        if self.faults is None:
            return data, False
        kind = self.faults.next_receive_fault()
        if kind is None:
            return data, False
        self.stats.faults_injected += 1
        if kind == "corrupt":
            return self.faults.corrupt_bytes(data), False
        if kind == "slow":
            time.sleep(self.faults.slow_seconds)
            return data, False
        # drop: the worker answered its FIFO head; discard the answer.
        if worker.inflight:
            task = worker.inflight.popleft()
            self.stats.results_dropped += 1
            outcomes.append(TaskOutcome(
                task, TASK_CRASHED,
                duration=time.monotonic() - task.dispatch_time))
        return data, True

    def _take_result_entry(self, worker, msg):
        """Materialize an shm result's entry: copy the blob out of the
        worker's result ring (releasing it) or take the inline bytes,
        CRC-check, decode. Returns ``(entry, entry_blob_len)``."""
        if not msg.has_entry:
            return None, 0
        if msg.blob_len > self.config.max_frame_bytes:
            raise wire.WireError("shm entry blob of %d bytes exceeds the "
                                 "%d-byte limit"
                                 % (msg.blob_len, self.config.max_frame_bytes))
        if msg.location == wire.BLOB_SHM:
            if worker.result_ring is None:
                raise wire.WireError("shm blob reference without a ring")
            blob = worker.result_ring.read(msg.seq, msg.blob_len)
            # Cumulative release: this also reclaims any earlier blob a
            # dropped control frame left stranded in the ring.
            worker.result_ring.release(msg.seq + msg.blob_len)
            self.stats.shm_bytes_read += len(blob)
        else:
            blob = msg.blob
        wire.check_blob(blob, msg.blob_crc)
        entry, end = wire.decode_entry(blob)
        if end != len(blob):
            raise wire.WireError("trailing bytes in shm entry blob")
        return entry, len(blob)

    def _ingest(self, worker, data):
        msg_type, pos = wire.decode_message(data,
                                            self.config.max_frame_bytes)
        if msg_type == wire.MSG_RESULT:
            msg = wire.decode_result(data, pos)
            entry = msg.entry
            # The pipe frame *is* the logical frame.
            logical = len(data)
        elif msg_type == wire.MSG_RESULT_SHM:
            msg = wire.decode_result_shm(data, pos)
            entry, entry_len = self._take_result_entry(worker, msg)
            fault_len = len((msg.fault or "").encode("utf-8"))
            logical = wire.logical_result_bytes(fault_len, entry_len)
        else:
            raise wire.WireError("worker %d sent unexpected message type %d"
                                 % (worker.index, msg_type))
        if not worker.inflight or worker.inflight[0].task_id != msg.task_id:
            raise wire.WireError("worker %d answered task %d out of order"
                                 % (worker.index, msg.task_id))
        task = worker.inflight.popleft()
        duration = time.monotonic() - task.dispatch_time
        self.supervisor.note_success(worker.index, duration)
        self.stats.tasks_completed += 1
        self.stats.logical_bytes_received += logical
        self.stats.worker_instructions += msg.instructions
        if msg.status == wire.RESULT_STALE:
            # Epoch mismatch: the worker refused a sparse delta it has
            # no base for (it answered honestly, so this is not a
            # supervision failure). Clear the engine-side base so the
            # next task for this worker ships a full snapshot; the
            # engine re-dispatches the work.
            self.stats.stale_results += 1
            worker.base_state = None
            return TaskOutcome(task, TASK_STALE, duration=duration)
        if task.audit:
            # Audit verdicts bypass the shipped/failed speculation
            # accounting (and fault injection): the auditor owns them.
            status = (TASK_OK if msg.status == wire.RESULT_OK
                      and entry is not None else TASK_FAILED)
            return TaskOutcome(task, status, entry=entry,
                               instructions=msg.instructions,
                               halted=msg.halted, fault=msg.fault,
                               duration=duration)
        if msg.status == wire.RESULT_OK and entry is not None:
            self.stats.entries_shipped += 1
            status = TASK_OK
        else:
            self.stats.tasks_failed += 1
            status = TASK_FAILED
            if msg.fault and msg.fault.startswith(OOM_FAULT_PREFIX):
                # A speculation hit the worker memory cap and was
                # contained (worker alive, task reported failed) — a
                # structured incident, not just a counter, because an
                # operator needs the rip to know *what* blew the budget.
                self.stats.tasks_oom += 1
                self.stats.incidents.append({
                    "kind": "worker_oom",
                    "worker": worker.index,
                    "task_id": task.task_id,
                    "rip": task.rip,
                    "fault": msg.fault,
                    "time": time.time(),
                })
        return TaskOutcome(task, status, entry=entry,
                           instructions=msg.instructions, halted=msg.halted,
                           fault=msg.fault, duration=duration)

    def _reap_expired(self):
        """Kill workers whose oldest task blew the deadline."""
        timeout = self.config.task_timeout_seconds
        now = time.monotonic()
        outcomes = []
        for worker in self._live():
            if timeout is not None and worker.inflight and \
                    now - worker.inflight[0].dispatch_time > timeout:
                outcomes.extend(self._fail_worker(worker, TASK_TIMED_OUT))
            elif not worker.proc.is_alive():
                outcomes.extend(self._fail_worker(worker, TASK_CRASHED))
        return outcomes
