"""A pool of persistent speculation workers on real cores.

The pool owns N OS processes (:func:`~repro.runtime.worker.worker_main`)
connected by duplex pipes. The engine talks to it through three calls:
:meth:`WorkerPool.submit` (assign a speculation to an idle slot, with
backpressure when every worker is at its queue depth), :meth:`poll`
(collect finished results, enforce per-task deadlines, detect and
replace dead workers), and :meth:`shutdown`.

Failure policy — speculation is *disposable* work, so every failure
mode degrades to "that task produced nothing":

* a worker that crashes (killed, segfaults the interpreter, OOM) is
  detected by pipe EOF / liveness, its in-flight tasks are reported as
  :data:`TASK_CRASHED`, and a fresh worker is spawned in its place;
* a worker whose oldest task outlives the deadline is killed outright
  (a stuck pipe or runaway loop must not stall the engine) and its
  tasks are reported as :data:`TASK_TIMED_OUT`;
* a worker that reports a fault or exhausted budget yields
  :data:`TASK_FAILED` — the predicted state was garbage, which the
  paper's design explicitly tolerates.

The engine decides whether to re-speculate; the pool only guarantees
that every submitted task eventually produces exactly one outcome.
"""

import itertools
import multiprocessing
import time
from collections import deque
from multiprocessing.connection import wait as _conn_wait

from repro.errors import ReproError
from repro.runtime import wire
from repro.runtime.config import RuntimeConfig, default_start_method
from repro.runtime.stats import RuntimeStats
from repro.runtime.worker import worker_main

#: Task outcome statuses (pool-level view; the wire-level OK/FAULT/
#: BUDGET/EMPTY collapse into OK vs FAILED here).
TASK_OK = "ok"
TASK_FAILED = "failed"
TASK_TIMED_OUT = "timed-out"
TASK_CRASHED = "crashed"


class PoolError(ReproError):
    """The worker pool was misused or gave up (respawn storm)."""


class SpeculationTask:
    """One dispatched speculation, as the engine sees it."""

    __slots__ = ("task_id", "rip", "occurrences", "max_instructions",
                 "meta", "dispatch_time", "payload_bytes", "worker")

    def __init__(self, task_id, rip, occurrences, max_instructions, meta,
                 dispatch_time, payload_bytes, worker):
        self.task_id = task_id
        self.rip = rip
        self.occurrences = occurrences
        self.max_instructions = max_instructions
        self.meta = meta  # opaque engine tag (e.g. the coverage key)
        self.dispatch_time = dispatch_time
        self.payload_bytes = payload_bytes
        self.worker = worker  # worker index it ran on

    def __repr__(self):
        return "SpeculationTask(id=%d, rip=0x%x, worker=%d)" % (
            self.task_id, self.rip, self.worker)


class TaskOutcome:
    """One finished task: the submitted task plus what came back."""

    __slots__ = ("task", "status", "entry", "instructions", "halted",
                 "fault", "duration")

    def __init__(self, task, status, entry=None, instructions=0,
                 halted=False, fault=None, duration=0.0):
        self.task = task
        self.status = status
        self.entry = entry
        self.instructions = instructions
        self.halted = halted
        self.fault = fault
        self.duration = duration  # dispatch -> completion wall seconds

    @property
    def ok(self):
        return self.status == TASK_OK and self.entry is not None

    def __repr__(self):
        return "TaskOutcome(id=%d, status=%s, entry=%s)" % (
            self.task.task_id, self.status, self.entry is not None)


class _Worker:
    __slots__ = ("index", "proc", "conn", "inflight")

    def __init__(self, index, proc, conn):
        self.index = index
        self.proc = proc
        self.conn = conn
        self.inflight = deque()  # SpeculationTasks, FIFO per worker


class WorkerPool:
    """Persistent multiprocess speculation workers for one program."""

    def __init__(self, program, config=None, stats=None):
        self.config = config or RuntimeConfig()
        if self.config.n_workers < 1:
            raise PoolError("n_workers must be >= 1")
        self.stats = stats or RuntimeStats()
        self._program_payload = program.to_dict()
        self._fast_path = None  # workers follow REPRO_FAST_PATH by default
        self._ctx = multiprocessing.get_context(
            self.config.start_method or default_start_method())
        self._task_ids = itertools.count(1)
        self._respawns = 0
        self._closed = False
        self._workers = [self._spawn(i) for i in range(self.config.n_workers)]

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, index):
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self._program_payload, self._fast_path),
            name="repro-spec-%d" % index, daemon=True)
        proc.start()
        child_conn.close()
        return _Worker(index, proc, parent_conn)

    def _respawn(self, worker):
        """Replace a dead/killed worker in place."""
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.proc.is_alive():
            worker.proc.kill()
        worker.proc.join(timeout=5.0)
        self._respawns += 1
        self.stats.workers_respawned += 1
        if self._respawns > self.config.respawn_limit:
            raise PoolError("worker respawn limit (%d) exceeded; the "
                            "program or platform is killing workers faster "
                            "than speculation can use them"
                            % self.config.respawn_limit)
        fresh = self._spawn(worker.index)
        self._workers[worker.index] = fresh
        return fresh

    def shutdown(self):
        """Stop every worker; polite first, then by force. Idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send_bytes(wire.encode_shutdown())
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + 2.0
        for worker in self._workers:
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()

    # -- introspection -------------------------------------------------------

    @property
    def n_workers(self):
        return len(self._workers)

    def idle_slots(self):
        """How many more tasks :meth:`submit` would accept right now."""
        depth = self.config.queue_depth
        return sum(max(0, depth - len(w.inflight)) for w in self._workers)

    def inflight_count(self):
        return sum(len(w.inflight) for w in self._workers)

    def worker_pids(self):
        """Live worker PIDs (fault-injection tests kill these)."""
        return [w.proc.pid for w in self._workers]

    # -- dispatch ------------------------------------------------------------

    def submit(self, rip, occurrences, max_instructions, start_state,
               meta=None):
        """Assign a speculation to the least-loaded worker.

        Returns the :class:`SpeculationTask`, or ``None`` when every
        worker is at its queue depth (backpressure — the caller simply
        tries again at the next superstep boundary).
        """
        if self._closed:
            raise PoolError("submit on a shut-down pool")
        worker = min(self._workers, key=lambda w: len(w.inflight))
        if len(worker.inflight) >= self.config.queue_depth:
            self.stats.dispatch_backpressure += 1
            return None
        task_id = next(self._task_ids)
        payload = wire.encode_task(task_id, rip, occurrences,
                                   max_instructions, start_state)
        task = SpeculationTask(task_id, rip, occurrences, max_instructions,
                               meta, time.monotonic(), len(payload),
                               worker.index)
        try:
            worker.conn.send_bytes(payload)
        except (OSError, ValueError, BrokenPipeError):
            # Found dead at dispatch time: replace it and report the
            # crash through the normal outcome path on the next poll by
            # queueing the task against the fresh worker.
            worker = self._respawn(worker)
            task.worker = worker.index
            task.dispatch_time = time.monotonic()
            worker.conn.send_bytes(payload)
        worker.inflight.append(task)
        self.stats.tasks_dispatched += 1
        self.stats.bytes_sent += len(payload)
        return task

    # -- collection ----------------------------------------------------------

    def poll(self, timeout=0.0):
        """Collect every outcome available within ``timeout`` seconds.

        Always returns promptly once at least one outcome (result,
        crash, or deadline kill) has been produced; an empty list means
        the timeout elapsed with all workers still busy or idle.
        """
        outcomes = []
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            outcomes.extend(self._reap_expired())
            busy = {w.conn: w for w in self._workers if w.inflight}
            if not busy:
                break
            remaining = deadline - time.monotonic()
            if outcomes:
                remaining = 0.0  # drain whatever is ready, don't linger
            if remaining < 0:
                remaining = 0.0
            # Bound each wait so deadline kills stay responsive even
            # when a worker hangs without closing its pipe.
            ready = _conn_wait(list(busy), timeout=min(remaining, 0.05))
            for conn in ready:
                worker = busy[conn]
                try:
                    data = conn.recv_bytes()
                except (EOFError, OSError):
                    outcomes.extend(self._declare_dead(worker, TASK_CRASHED))
                    continue
                outcomes.append(self._ingest(worker, data))
            if not ready and time.monotonic() >= deadline:
                break
            if outcomes and not ready:
                break
        return outcomes

    def _ingest(self, worker, data):
        msg_type, pos = wire.decode_message(data)
        if msg_type != wire.MSG_RESULT:
            raise PoolError("worker %d sent unexpected message type %d"
                            % (worker.index, msg_type))
        msg = wire.decode_result(data, pos)
        if not worker.inflight or worker.inflight[0].task_id != msg.task_id:
            raise PoolError("worker %d answered task %d out of order"
                            % (worker.index, msg.task_id))
        task = worker.inflight.popleft()
        duration = time.monotonic() - task.dispatch_time
        self.stats.tasks_completed += 1
        self.stats.bytes_received += len(data)
        self.stats.worker_instructions += msg.instructions
        if msg.status == wire.RESULT_OK and msg.entry is not None:
            self.stats.entries_shipped += 1
            status = TASK_OK
        else:
            self.stats.tasks_failed += 1
            status = TASK_FAILED
        return TaskOutcome(task, status, entry=msg.entry,
                           instructions=msg.instructions, halted=msg.halted,
                           fault=msg.fault, duration=duration)

    def _declare_dead(self, worker, status):
        """Turn a dead worker's queue into outcomes and respawn it."""
        outcomes = []
        now = time.monotonic()
        counter = ("tasks_crashed" if status == TASK_CRASHED
                   else "tasks_timed_out")
        for task in worker.inflight:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)
            outcomes.append(TaskOutcome(task, status,
                                        duration=now - task.dispatch_time))
        worker.inflight.clear()
        self._respawn(worker)
        return outcomes

    def _reap_expired(self):
        """Kill workers whose oldest task blew the deadline."""
        timeout = self.config.task_timeout_seconds
        if timeout is None:
            return []
        now = time.monotonic()
        outcomes = []
        for worker in list(self._workers):
            if worker.inflight and \
                    now - worker.inflight[0].dispatch_time > timeout:
                worker.proc.kill()
                worker.proc.join(timeout=5.0)
                outcomes.extend(self._declare_dead(worker, TASK_TIMED_OUT))
            elif not worker.proc.is_alive():
                outcomes.extend(self._declare_dead(worker, TASK_CRASHED))
        return outcomes
