"""Worker process main loop.

Each pool worker is one long-lived OS process. At startup it rebuilds
the program image from its JSON form and creates a single
:class:`~repro.machine.transition.TransitionContext` — so the decoded
instruction cache and the block-translation cache warm up once and stay
hot across every task the worker ever runs (the paper's workers likewise
hold the loaded binary for the life of the computation).

The loop is strictly request/response over one duplex pipe: receive a
task frame, run the speculation, send a result frame. A malformed frame
or a closed pipe ends the process; SIGINT is ignored so that a Ctrl-C
delivered to the foreground process group interrupts only the engine,
which then shuts the pool down deliberately.
"""

import signal

from repro.core.speculation import run_speculation
from repro.loader.image import Program
from repro.runtime import wire
from repro.verify.audit import run_audit


def worker_main(conn, program_payload, fast_path, max_frame_bytes=None):
    """Entry point for a pool worker (``multiprocessing.Process`` target).

    ``conn`` is the worker end of a duplex pipe; ``program_payload`` the
    :meth:`Program.to_dict` form of the image; ``fast_path`` the
    interpreter-tier override (None follows ``REPRO_FAST_PATH``);
    ``max_frame_bytes`` bounds how large a frame the worker will read —
    an oversized or checksum-failing frame ends the process, which the
    parent observes as a worker crash (the safe interpretation of a
    corrupt stream).
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread (tests) or odd platform
        pass
    if max_frame_bytes is None:
        max_frame_bytes = wire.DEFAULT_MAX_FRAME_BYTES
    program = Program.from_dict(program_payload)
    context = program.make_context(fast_path=fast_path)
    try:
        while True:
            try:
                data = conn.recv_bytes(max_frame_bytes)
            except (EOFError, OSError):
                break  # engine went away, or sent an oversized frame
            msg_type, pos = wire.decode_message(data, max_frame_bytes)
            if msg_type == wire.MSG_SHUTDOWN:
                break
            if msg_type != wire.MSG_TASK:
                raise wire.WireError("worker got unexpected message type %d"
                                     % msg_type)
            task = wire.decode_task(data, pos)
            if task.flags & wire.FLAG_AUDIT:
                # Shadow audit: replay exactly the claimed instruction
                # count on the reference tier and ship the ground truth.
                result = run_audit(context, task.start_state, task.rip,
                                   task.max_instructions,
                                   occurrences=task.occurrences)
            else:
                result = run_speculation(context, task.start_state,
                                         task.rip, task.occurrences,
                                         task.max_instructions)
            conn.send_bytes(wire.encode_result(task.task_id, result))
    finally:
        conn.close()
