"""Worker process main loop.

Each pool worker is one long-lived OS process. At startup it rebuilds
the program image from its JSON form and creates a single
:class:`~repro.machine.transition.TransitionContext` — so the decoded
instruction cache and the block-translation cache warm up once and stay
hot across every task the worker ever runs (the paper's workers likewise
hold the loaded binary for the life of the computation).

The loop is strictly request/response over one duplex pipe: receive a
task frame, run the speculation, send a result frame. Under the shm
transport the pipe frames are *control messages only*: the start state
arrives as a delta-compressed blob in the worker's task ring (named by
sequence/length/CRC), and the produced cache entry leaves through its
result ring the same way. The worker holds the last reconstructed
start state as the delta base, tagged with the engine-assigned *epoch*;
a sparse delta against an epoch it does not hold is answered with
:data:`~repro.runtime.wire.RESULT_STALE` rather than guessed at.

A malformed frame, a failed blob checksum, an oversized blob, or a
closed pipe ends the process; the parent observes that as a worker
crash (the safe interpretation of a corrupt stream). SIGINT is ignored
so that a Ctrl-C delivered to the foreground process group interrupts
only the engine, which then shuts the pool down deliberately.
"""

import gc
import os
import signal

from repro.core.speculation import SpeculationResult, run_speculation
from repro.loader.image import Program
from repro.runtime import resources, shm, wire
from repro.verify.audit import run_audit

#: Fault-string prefix for a contained out-of-memory speculation; the
#: pool keys its ``tasks_oom`` counter and incident reports off it.
OOM_FAULT_PREFIX = "oom:"


def _run_task(context, start_state, rip, occurrences, max_instructions,
              flags):
    if flags & wire.FLAG_AUDIT:
        # Shadow audit: replay exactly the claimed instruction count on
        # the reference tier and ship the ground truth.
        return run_audit(context, start_state, rip, max_instructions,
                         occurrences=occurrences)
    return run_speculation(context, start_state, rip, occurrences,
                           max_instructions)


def _contained_run(context, start_state, rip, occurrences,
                   max_instructions, flags, rlimit_restore):
    """Run one task with ``MemoryError`` contained.

    Under ``RLIMIT_AS`` a runaway speculation surfaces as a Python
    ``MemoryError`` rather than a host-level OOM kill. Speculation is
    disposable, so the right answer is a *failed task*, not a dead
    worker: restore the soft limit (a chaos ``prlimit`` tightening may
    have lowered it), drop whatever the aborted run allocated, and
    report the fault. A MemoryError so severe this handler itself
    cannot run ends the process — the ordinary worker-crash path.
    """
    try:
        return _run_task(context, start_state, rip, occurrences,
                         max_instructions, flags)
    except MemoryError:
        resources.restore_rlimit_as(rlimit_restore)
        gc.collect()
        return SpeculationResult(
            None, 0, False,
            fault=OOM_FAULT_PREFIX
            + " speculation exceeded the worker memory limit")


def _take_blob(msg, task_ring, max_frame_bytes):
    """Materialize an shm task's state blob: copy it out of the task
    ring (then release it) or take the inline bytes. Any inconsistency
    — oversized length, CRC failure, ring desync — raises, which ends
    the worker: a blob is applied as a trusted start state, so a frame
    we cannot verify means the transport is compromised."""
    if msg.blob_len > max_frame_bytes:
        raise wire.WireError("shm blob of %d bytes exceeds the %d-byte "
                             "limit" % (msg.blob_len, max_frame_bytes))
    if msg.location == wire.BLOB_INLINE:
        blob = msg.blob
    else:
        if task_ring is None:
            raise wire.WireError("shm blob reference without a task ring")
        blob = task_ring.read(msg.seq, msg.blob_len)
        task_ring.release(msg.seq + msg.blob_len)
    return wire.check_blob(blob, msg.blob_crc)


def worker_main(conn, program_payload, fast_path, max_frame_bytes=None,
                shm_names=None, parent_pid=None, rlimit_as_bytes=None):
    """Entry point for a pool worker (``multiprocessing.Process`` target).

    ``conn`` is the worker end of a duplex pipe; ``program_payload`` the
    :meth:`Program.to_dict` form of the image; ``fast_path`` the
    interpreter-tier override (None follows ``REPRO_FAST_PATH``);
    ``max_frame_bytes`` bounds how large a frame the worker will read —
    and how large an shm blob it will dereference — so an oversized or
    checksum-failing frame ends the process, which the parent observes
    as a worker crash. ``shm_names`` is ``(task_ring, result_ring)``
    segment names for the shm transport, or ``None`` for pipe-only.
    ``parent_pid`` is the engine's pid as the *pool* recorded it — the
    worker must not derive it itself, because an engine killed during
    worker startup re-parents the child before its first
    ``os.getppid()`` could run. ``rlimit_as_bytes`` caps the worker's
    address space (``RLIMIT_AS``) so a runaway speculation fails as a
    contained task fault instead of taking the host.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread (tests) or odd platform
        pass
    rlimit_restore = resources.apply_worker_rlimit(rlimit_as_bytes)
    if rlimit_restore is None:
        # No configured cap: remember the inherited limits anyway, so a
        # chaos prlimit tightening can be undone after containment.
        rlimit_restore = resources.current_rlimit_as()
    if max_frame_bytes is None:
        max_frame_bytes = wire.DEFAULT_MAX_FRAME_BYTES
    program = Program.from_dict(program_payload)
    context = program.make_context(fast_path=fast_path)
    task_ring = result_ring = None
    if shm_names is not None:
        # The pool owns both segments; attach_ring suppresses resource
        # tracking so nothing unlinks them behind the engine's back.
        # The deliberate unlink in the finally below is different: it
        # only runs once this worker's pipe is dead, after which the
        # pool never touches these rings again.
        task_ring = shm.attach_ring(shm_names[0])
        result_ring = shm.attach_ring(shm_names[1])
    base_state = None  # last reconstructed start state (delta base)
    base_epoch = 0  # engine-assigned epoch naming that base
    if parent_pid is None:
        parent_pid = os.getppid()
    try:
        while True:
            try:
                # Wake periodically instead of blocking forever: a
                # SIGKILLed engine leaves no EOF if a sibling worker
                # (forked later) still holds this pipe's parent end, so
                # re-parenting is the only reliable death signal.
                while not conn.poll(1.0):
                    if os.getppid() != parent_pid:
                        raise EOFError("engine process is gone")
                data = conn.recv_bytes(max_frame_bytes)
            except (EOFError, OSError):
                break  # engine went away, or sent an oversized frame
            msg_type, pos = wire.decode_message(data, max_frame_bytes)
            if msg_type == wire.MSG_SHUTDOWN:
                break
            if msg_type == wire.MSG_TASK:
                task = wire.decode_task(data, pos)
                result = _contained_run(context, task.start_state, task.rip,
                                        task.occurrences,
                                        task.max_instructions, task.flags,
                                        rlimit_restore)
                conn.send_bytes(wire.encode_result(task.task_id, result))
                continue
            if msg_type != wire.MSG_TASK_SHM:
                raise wire.WireError("worker got unexpected message type %d"
                                     % msg_type)
            msg = wire.decode_task_shm(data, pos)
            blob = _take_blob(msg, task_ring, max_frame_bytes)
            if blob[0] == wire.DELTA_SPARSE and (
                    base_state is None or base_epoch != msg.base_epoch):
                # The engine encoded against a base this worker does not
                # hold (fresh respawn, or bookkeeping drift). Refusing
                # loudly is cheap; guessing would corrupt the cache.
                conn.send_bytes(wire.encode_result_shm(
                    msg.task_id, wire.RESULT_STALE, 0, False, None))
                continue
            start_state = wire.decode_state_delta(blob, base=base_state)
            base_state = start_state
            base_epoch = msg.epoch
            result = _contained_run(context, start_state, msg.rip,
                                    msg.occurrences, msg.max_instructions,
                                    msg.flags, rlimit_restore)
            entry_blob = seq = None
            if result.entry is not None:
                entry_blob = wire.encode_entry(result.entry)
                if result_ring is not None:
                    # Ring full (engine hasn't drained yet) falls back
                    # to inline — a result must never wait on its own
                    # consumer.
                    seq = result_ring.try_push(entry_blob)
            conn.send_bytes(wire.encode_result_shm(
                msg.task_id, wire.result_status(result),
                result.instructions, result.halted, result.fault,
                blob=entry_blob, seq=seq))
    finally:
        conn.close()
        for ring in (task_ring, result_ring):
            if ring is not None:
                # Last one out reaps: if the engine died without
                # unlinking (SIGKILL skips its atexit sweep), this
                # worker is the only process left that can. The pool
                # never re-attaches a ring once this pipe is closed,
                # and unlinking a name the pool already removed is a
                # no-op, so forcing here can only ever remove garbage.
                ring.unlink(force=True)
