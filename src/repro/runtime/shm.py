"""Shared-memory ring buffers for the multiprocess runtime.

The pipe transport ships every start state and every result write set
through the kernel twice (sender copy-in, receiver copy-out). This
module provides the bulk lane of the ``shm`` transport: one
single-producer/single-consumer ring per worker per direction, backed
by :class:`multiprocessing.shared_memory.SharedMemory`. Payload blobs
are written once into the ring; the pipes carry only small control
frames naming each blob by ``(seq, length, CRC32)``
(:mod:`repro.runtime.wire`).

Ring discipline — exactly one producer and one consumer per ring, the
shape the pool guarantees (the engine produces into a worker's task
ring and consumes its result ring; the worker does the opposite):

* ``head`` and ``tail`` are *monotonic byte counters*, not wrapped
  offsets. A blob's ``seq`` is the value of ``head`` when it was
  pushed; its bytes live at ``seq % capacity``, wrapping through the
  end of the data region.
* Only the producer writes ``head``; only the consumer writes
  ``tail``. Each side reads the other's cursor to compute free space,
  so no lock is needed: an 8-byte aligned store is not torn on any
  platform CPython runs on, and the control message that makes a blob
  *visible* travels through a pipe (a syscall on both ends), which
  orders the shared-memory writes before the consumer ever looks.
* The consumer copies a blob out and then releases through
  ``seq + length``. Skipping a blob (a dropped control frame) is safe:
  the next release is cumulative, so the skipped region is reclaimed
  the moment any later blob is consumed.
* Every blob's CRC travels in the control frame; a checksum mismatch
  on read means the ring desynchronized or was corrupted, and the
  reader treats the peer exactly like a crashed worker.

Hygiene — segments are kernel-persistent objects (``/dev/shm/psm_*``)
that outlive a SIGKILLed process, so ownership is strict: the *pool*
creates every ring, unlinks it on worker crash/respawn, quarantine,
retirement, and pool shutdown, and an ``atexit`` sweep unlinks
anything still registered if the pool never got to clean up. Workers
attach with ``resource_tracker`` registration suppressed so nothing
unlinks a ring behind the engine's back (Python < 3.13 tracks mere
attachments too) — but on *exit* a worker force-unlinks its own rings:
once its pipe is dead the pool never touches them again, and if the
engine was SIGKILLed (no atexit sweep ran) the worker is the last
process able to reap the segments.
"""

import atexit
import struct
import threading

from repro.errors import ReproError

try:  # the transport is gated on this import succeeding
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - all supported platforms have it
    resource_tracker = None
    shared_memory = None

RING_MAGIC = b"ASCR"
RING_VERSION = 1

#: Fixed header: magic, version, reserved, capacity. Cursors live at
#: their own 8-byte-aligned offsets, padded apart so the producer's
#: head store and the consumer's tail store never share a cache line.
_RING_HEADER = struct.Struct("<4sHHQ")
_HEAD_OFFSET = 16
_TAIL_OFFSET = 32
DATA_OFFSET = 64

_CURSOR = struct.Struct("<Q")


class ShmError(ReproError):
    """A shared-memory ring was unavailable, invalid, or desynced."""


def shm_available():
    """Whether this interpreter can host the shm transport at all."""
    return shared_memory is not None


# -- hygiene registry --------------------------------------------------------

#: Segments created (not attached) by this process and not yet
#: unlinked; the atexit sweep reaps whatever an unclean exit leaves.
_created_segments = {}
_registry_lock = threading.Lock()
_atexit_installed = False


def _register_created(segment):
    global _atexit_installed
    with _registry_lock:
        _created_segments[segment.name] = segment
        if not _atexit_installed:
            atexit.register(_cleanup_created_segments)
            _atexit_installed = True


def _unregister_created(name):
    with _registry_lock:
        _created_segments.pop(name, None)


def _cleanup_created_segments():
    """atexit sweep: unlink every segment the pool never released."""
    sweep_created_segments()


def sweep_created_segments():
    """Unlink every segment this process created and never released.

    Explicitly **idempotent and reentrant-safe**: the registry is
    emptied under the lock before any unlink happens, so a daemon's
    SIGTERM handler, its ``close()`` path, and the atexit hook can all
    fire (even twice, under double-SIGTERM) without raising or racing —
    later calls see an empty registry and do nothing. Returns how many
    segments this call actually reaped.
    """
    with _registry_lock:
        leftovers = list(_created_segments.values())
        _created_segments.clear()
    for segment in leftovers:
        for action in (segment.close, segment.unlink):
            try:
                action()
            except (OSError, FileNotFoundError, BufferError):
                pass
    return len(leftovers)


def live_segment_names():
    """Names of segments this process created and has not unlinked
    (the hygiene test asserts this is empty after shutdown)."""
    with _registry_lock:
        return sorted(_created_segments)


# -- the ring ----------------------------------------------------------------

class ShmRing:
    """One SPSC byte ring inside a shared-memory segment.

    Use :func:`create_ring` (owner/producer-or-consumer side) or
    :func:`attach_ring` (worker side); both ends then call the
    producer half (:meth:`try_push`, :meth:`free_bytes`) or the
    consumer half (:meth:`read`, :meth:`release`) as their role
    dictates.
    """

    __slots__ = ("shm", "capacity", "created", "_head", "_tail", "_closed")

    def __init__(self, segment, capacity, created):
        self.shm = segment
        self.capacity = capacity
        self.created = created
        self._head = self._load(_HEAD_OFFSET)
        self._tail = self._load(_TAIL_OFFSET)
        self._closed = False

    @property
    def name(self):
        return self.shm.name

    # -- cursors -------------------------------------------------------------

    def _load(self, offset):
        return _CURSOR.unpack_from(self.shm.buf, offset)[0]

    def _store(self, offset, value):
        _CURSOR.pack_into(self.shm.buf, offset, value)

    def used_bytes(self):
        return self._load(_HEAD_OFFSET) - self._load(_TAIL_OFFSET)

    def free_bytes(self):
        """Producer view: bytes currently pushable."""
        return self.capacity - (self._head - self._load(_TAIL_OFFSET))

    # -- producer ------------------------------------------------------------

    def try_push(self, blob):
        """Write ``blob`` into the ring; returns its ``seq`` or ``None``
        when the ring lacks space (backpressure) or the blob can never
        fit at all."""
        if self._closed:
            raise ShmError("push on a closed ring")
        length = len(blob)
        if length == 0 or length > self.capacity:
            return None
        if length > self.free_bytes():
            return None
        seq = self._head
        pos = seq % self.capacity
        first = min(length, self.capacity - pos)
        buf = self.shm.buf
        buf[DATA_OFFSET + pos:DATA_OFFSET + pos + first] = blob[:first]
        if first < length:  # wrap through the end of the data region
            buf[DATA_OFFSET:DATA_OFFSET + length - first] = blob[first:]
        self._head = seq + length
        self._store(_HEAD_OFFSET, self._head)
        return seq

    # -- consumer ------------------------------------------------------------

    def read(self, seq, length):
        """Copy one blob out of the ring. The caller then validates the
        CRC from the control frame and calls :meth:`release`."""
        if self._closed:
            raise ShmError("read on a closed ring")
        if length <= 0 or length > self.capacity:
            raise ShmError("blob length %d outside ring capacity %d"
                           % (length, self.capacity))
        if seq < self._tail:
            raise ShmError("blob seq %d precedes released tail %d"
                           % (seq, self._tail))
        if seq + length > self._load(_HEAD_OFFSET):
            raise ShmError("blob [%d, %d) beyond producer head — ring "
                           "desync" % (seq, seq + length))
        pos = seq % self.capacity
        first = min(length, self.capacity - pos)
        buf = self.shm.buf
        out = bytes(buf[DATA_OFFSET + pos:DATA_OFFSET + pos + first])
        if first < length:
            out += bytes(buf[DATA_OFFSET:DATA_OFFSET + length - first])
        return out

    def release(self, upto_seq):
        """Free every byte before ``upto_seq`` (cumulative; skipping a
        dropped blob is fine — the next release reclaims it)."""
        if upto_seq > self._tail:
            self._tail = upto_seq
            self._store(_TAIL_OFFSET, self._tail)

    # -- lifecycle -----------------------------------------------------------

    def close(self):
        """Detach the mapping (both ends). Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self.shm.close()
        except (OSError, BufferError):
            pass

    def unlink(self, force=False):
        """Destroy the segment (creator side only, unless ``force``).
        Idempotent; safe while the peer is still attached (POSIX keeps
        the mapping alive until every attachment closes).

        ``force`` lets an *attached* end unlink as a last resort: a
        worker that outlives a SIGKILLed engine is the only process
        left that can reap the segment (the engine's atexit sweep died
        with it). Unlinking a name the pool already removed is a no-op,
        and the pool never re-attaches a ring once its worker's pipe
        has closed, so a forced unlink can only ever remove garbage."""
        self.close()
        if not (self.created or force):
            return
        _unregister_created(self.shm.name)
        original_unregister = None
        if not self.created and resource_tracker is not None:
            # Forced reap from the *attached* side: this process never
            # registered the segment, so it must not unregister either —
            # under fork it shares the creator's tracker, and yanking
            # the creator's registration (or dying between the file
            # unlink and the tracker write) is what desyncs the tracker.
            original_unregister = resource_tracker.unregister
            resource_tracker.unregister = lambda *args, **kwargs: None
        try:
            self.shm.unlink()
        except (OSError, FileNotFoundError):
            # The peer reaped the file first. CPython's SharedMemory
            # raises *before* dropping its tracker registration, which
            # would warn about a "leaked" segment at interpreter exit —
            # drop ours explicitly.
            if self.created and resource_tracker is not None:
                try:
                    resource_tracker.unregister(
                        "/" + self.shm.name, "shared_memory")
                except Exception:
                    pass
        finally:
            if original_unregister is not None:
                resource_tracker.unregister = original_unregister


def create_ring(capacity):
    """Create a new ring segment (engine side owns the lifecycle)."""
    if shared_memory is None:
        raise ShmError("multiprocessing.shared_memory is unavailable")
    if capacity < 1:
        raise ShmError("ring capacity must be >= 1 byte")
    segment = shared_memory.SharedMemory(create=True,
                                         size=DATA_OFFSET + capacity)
    _RING_HEADER.pack_into(segment.buf, 0, RING_MAGIC, RING_VERSION, 0,
                           capacity)
    _CURSOR.pack_into(segment.buf, _HEAD_OFFSET, 0)
    _CURSOR.pack_into(segment.buf, _TAIL_OFFSET, 0)
    _register_created(segment)
    return ShmRing(segment, capacity, created=True)


def attach_ring(name):
    """Attach to an existing ring by segment name (worker side)."""
    if shared_memory is None:
        raise ShmError("multiprocessing.shared_memory is unavailable")
    # Python < 3.13 registers mere attachments with the resource
    # tracker, which would unlink the ring when this process exits —
    # destroying the engine's segment. Suppressing the registration is
    # cleaner than registering-then-unregistering: under fork the
    # worker shares the engine's tracker process, where an unregister
    # would delete the *engine's* registration out from under it.
    original_register = None
    if resource_tracker is not None:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
    try:
        segment = shared_memory.SharedMemory(name=name)
    except (OSError, FileNotFoundError) as exc:
        raise ShmError("cannot attach ring %r: %s" % (name, exc))
    finally:
        if original_register is not None:
            resource_tracker.register = original_register
    magic, version, __, capacity = _RING_HEADER.unpack_from(segment.buf, 0)
    if magic != RING_MAGIC:
        segment.close()
        raise ShmError("segment %r is not a runtime ring" % name)
    if version != RING_VERSION:
        segment.close()
        raise ShmError("ring version %d, this endpoint speaks %d"
                       % (version, RING_VERSION))
    if DATA_OFFSET + capacity > segment.size:
        segment.close()
        raise ShmError("ring header claims %d bytes but segment holds %d"
                       % (capacity, segment.size))
    return ShmRing(segment, capacity, created=False)
