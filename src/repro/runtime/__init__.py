"""Real multiprocess speculation runtime.

The simulated-time :class:`~repro.core.engine.ParallelEngine` executes
every speculation serially in one Python process and *charges* parallel
time through the platform cost model. This package is the other
backend: a pool of persistent OS processes that really execute
speculations on spare cores and ship trajectory-cache entries back to
the main thread over pipes — the shape of the paper's LASC prototype
(spare cores + MPI) on one machine.

Layers:

* :mod:`repro.runtime.wire` — compact versioned binary wire format for
  tasks and results (numpy-backed, no pickling of live objects), plus
  the delta codec and the shm control frames;
* :mod:`repro.runtime.shm` — SPSC shared-memory ring buffers: the bulk
  lane of the ``shm`` transport (states and entries move through
  rings; pipes carry only blob references);
* :mod:`repro.runtime.worker` — the worker process main loop (loads the
  program image once, keeps its block cache warm across tasks);
* :mod:`repro.runtime.pool` — :class:`WorkerPool`: dispatch,
  backpressure, per-task timeouts, crash detection;
* :mod:`repro.runtime.supervisor` — :class:`Supervisor`: per-worker
  health, circuit breaking with exponential-backoff quarantine, pool
  shrinking, and the degradation ladder down to sequential execution;
* :mod:`repro.runtime.faults` — :class:`FaultPlan`: seeded,
  deterministic fault injection at the pool's failure seams;
* :mod:`repro.runtime.engine` — :class:`RealParallelEngine`: the
  Figure 1 loop against real workers and real wall-clock time, with
  checkpoint/restore via :mod:`repro.core.checkpoint`;
* :mod:`repro.runtime.autoscaler` — :class:`Autoscaler`: elastic
  worker-count policies sampled at superstep boundaries, steering the
  pool's live width by the paper's expected-utility economics.
"""

from repro.runtime.autoscaler import (
    POLICIES as AUTOSCALE_POLICIES,
    AutoscaleSignals,
    Autoscaler,
    make_autoscaler,
    resolve_autoscaler,
)
from repro.runtime.config import TRANSPORTS, RuntimeConfig
from repro.runtime.engine import RealParallelEngine, RealParallelResult
from repro.runtime.faults import FaultPlan, FaultPlanError
from repro.runtime.pool import (
    PoolError,
    TASK_CRASHED,
    TASK_FAILED,
    TASK_OK,
    TASK_STALE,
    TASK_TIMED_OUT,
    TaskOutcome,
    WorkerPool,
)
from repro.runtime.shm import ShmError, ShmRing
from repro.runtime.stats import RuntimeStats
from repro.runtime.supervisor import Supervisor, WorkerHealth
from repro.runtime.wire import WireError

__all__ = [
    "AUTOSCALE_POLICIES",
    "AutoscaleSignals",
    "Autoscaler",
    "FaultPlan",
    "FaultPlanError",
    "PoolError",
    "RealParallelEngine",
    "RealParallelResult",
    "RuntimeConfig",
    "RuntimeStats",
    "ShmError",
    "ShmRing",
    "Supervisor",
    "TASK_CRASHED",
    "TASK_FAILED",
    "TASK_OK",
    "TASK_STALE",
    "TASK_TIMED_OUT",
    "TRANSPORTS",
    "TaskOutcome",
    "WireError",
    "WorkerHealth",
    "WorkerPool",
    "make_autoscaler",
    "resolve_autoscaler",
]
