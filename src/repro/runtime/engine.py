"""The real-time parallel engine: ASC's Figure 1 loop on actual cores.

Where :class:`~repro.core.engine.ParallelEngine` *simulates* an N-core
platform (executing speculations serially and charging their latency to
a cost model), this engine runs the main thread in-process and ships
allocator-ranked speculation tasks to a :class:`WorkerPool` of real OS
processes. Completed cache entries stream back over pipes into an
in-process trajectory cache, and the main thread fast-forwards exactly
as the simulated engine does. All timing is wall-clock.

Correctness does not depend on any of the machinery working: every
cache entry a worker ships is an exact fact about the deterministic
transition function ("a state agreeing on these read bytes evolves to
these written bytes in N instructions"), so applying a matching entry
is identical to executing the instructions. Crashed, timed-out, and
mispredicted speculations simply produce nothing. The differential
tests assert the strong form: the final machine state is byte-identical
to a plain sequential run.

Scheduling at a superstep boundary:

1. drain completed results into the cache (non-blocking);
2. observe the state, advance the learners/allocator, dispatch
   uncovered rollout targets to idle worker slots (backpressure: at
   most ``queue_depth`` tasks in flight per worker);
3. probe the cache and fast-forward over every matching entry;
4. on a miss where the *current* state is itself an in-flight
   speculation, optionally wait for that worker instead of re-executing
   the superstep — but only when its estimated remaining time is
   cheaper than executing (an EWMA of task and superstep durations
   decides; on a saturated single core the engine correctly prefers to
   execute, on spare cores it converts pipeline stalls into hits).

Resilience: every boundary first asks the pool's supervisor whether
speculation is currently allowed. When the pool has degraded below its
worker floor (crash storms, quarantines), the engine simply stops
dispatching and waiting — it *is* the sequential fallback, and the
trajectory cache it has accumulated keeps serving hits — until the
supervisor re-enables speculation after its cooldown. A
:class:`~repro.core.checkpoint.Checkpointer` snapshots machine state,
cumulative instruction count, and the cache at boundary granularity;
``resume_from`` restarts a killed run from such a snapshot and, by
determinism, reaches a byte-identical final state.
"""

import time

from repro.core.allocator import Allocator, RelevanceMask
from repro.core.config import EngineConfig
from repro.core.excitation import ExcitationTracker
from repro.core.predictors.ensemble import default_ensemble
from repro.core.recognizer import Recognizer
from repro.core.stats import RunStats
from repro.core.trajectory_cache import TrajectoryCache
from repro.errors import EngineError
from repro.machine.layout import STOP_BREAKPOINT
from repro.runtime.autoscaler import AutoscaleSignals, resolve_autoscaler
from repro.runtime.config import RuntimeConfig
from repro.runtime.pool import TASK_FAILED, TASK_OK, WorkerPool
from repro.runtime import resources
from repro.runtime.stats import RuntimeStats
from repro.verify.auditor import SpliceAuditor
from repro.verify.config import resolve_verify


class RealParallelResult:
    """Everything measured by one real-runtime run."""

    def __init__(self, program_name, n_workers, recognized, wall_seconds,
                 total_instructions, stats, runtime, cache, final_state,
                 halted, machine):
        self.program_name = program_name
        self.n_workers = n_workers
        self.recognized = recognized
        self.wall_seconds = wall_seconds
        self.total_instructions = total_instructions
        self.stats = stats  # core RunStats (supersteps, hits, ff, ...)
        self.runtime = runtime  # RuntimeStats (tasks, bytes, crashes, ...)
        self.cache = cache
        self.final_state = final_state  # bytes; differential ground truth
        self.halted = halted
        self.machine = machine

    def speedup_vs(self, sequential_wall_seconds):
        """Wall-clock scaling against a measured sequential run."""
        if self.wall_seconds <= 0:
            return 0.0
        return sequential_wall_seconds / self.wall_seconds

    def __repr__(self):
        return ("RealParallelResult(%s, workers=%d, wall=%.3fs, hits=%d, "
                "ff=%d, shipped=%d)"
                % (self.program_name, self.n_workers, self.wall_seconds,
                   self.stats.hits, self.stats.instructions_fast_forwarded,
                   self.runtime.entries_shipped))


class _DurationEwma:
    """Exponentially weighted wall-time estimate."""

    __slots__ = ("value", "alpha")

    def __init__(self, alpha=0.3):
        self.value = None
        self.alpha = alpha

    def update(self, sample):
        if self.value is None:
            self.value = sample
        else:
            self.value += self.alpha * (sample - self.value)


class RealParallelEngine:
    """One ASC run of a program on real spare cores.

    ``pool`` may be shared across runs of the same program (workers are
    program-specific); when omitted, a pool is created for the run and
    shut down afterwards — including on error and KeyboardInterrupt.
    ``boundary_hook``, if given, is called as ``hook(engine, superstep)``
    at every boundary; the crash-injection tests use it to kill workers
    mid-run. ``checkpointer`` (a
    :class:`~repro.core.checkpoint.Checkpointer`) snapshots the run
    periodically; ``resume_from`` (a loaded
    :class:`~repro.core.checkpoint.Checkpoint`) restarts from one.
    """

    def __init__(self, program, config=None, runtime_config=None,
                 recognized=None, pool=None, initial_cache=None,
                 boundary_hook=None, checkpointer=None, resume_from=None,
                 verify=None):
        self.program = program
        self.config = config or EngineConfig()
        self.runtime_config = runtime_config or RuntimeConfig()
        self.recognized = recognized
        self.pool = pool
        self.initial_cache = initial_cache
        self.boundary_hook = boundary_hook
        self.checkpointer = checkpointer
        self.resume_from = resume_from
        self.verify = resolve_verify(verify)
        # Exposed for tests/CLI after run():
        self.machine = None
        self.resumed_instructions = 0

    # -- helpers -------------------------------------------------------------

    def _prepare(self):
        if self.recognized is None:
            try:
                self.recognized = Recognizer(self.config).find(self.program)
            except EngineError:
                # Too short or too irregular to recognize: the backend
                # still owes the caller a correct run (plain execution).
                self.recognized = None

    def run(self):
        """Execute to halt; returns a :class:`RealParallelResult`."""
        self._prepare()
        rtc = self.runtime_config
        own_pool = self.pool is None
        pool = self.pool
        if own_pool:
            pool = WorkerPool(self.program, rtc)
        try:
            return self._run(pool)
        finally:
            if own_pool:
                pool.shutdown()

    # -- the run -------------------------------------------------------------

    def _run(self, pool):
        program = self.program
        config = self.config
        rtc = self.runtime_config
        recognized = self.recognized
        runtime = pool.stats
        stats = RunStats()

        cache = TrajectoryCache(capacity_bytes=config.cache_capacity_bytes)
        if self.initial_cache is not None:
            for entry in self.initial_cache.entries():
                cache.insert(entry.with_ready_time(0.0))

        auditor = None
        if self.verify is not None and self.verify.enabled:
            auditor = SpliceAuditor(self.verify, cache,
                                    context_factory=program.make_context,
                                    stats_sink=runtime)

        main = program.make_machine(fast_path=config.fast_path)
        self.machine = main
        guard = rtc.max_instructions
        base_instructions = 0

        if self.resume_from is not None:
            ck = self.resume_from
            if len(ck.state) != len(main.state.buf):
                raise EngineError(
                    "checkpoint state is %d bytes but this program's "
                    "state vector is %d — wrong program or version?"
                    % (len(ck.state), len(main.state.buf)))
            main.state.buf[:] = ck.state
            main.instruction_count = ck.instruction_count
            base_instructions = ck.instruction_count
            self.resumed_instructions = base_instructions
            restored = ck.load_cache()
            if restored is not None:
                for entry in restored.entries():
                    cache.insert(entry.with_ready_time(0.0))
            runtime.checkpoints_restored += 1
            if self.checkpointer is not None:
                self.checkpointer.note_resumed(base_instructions)

        def progress():
            return (stats.instructions_executed
                    + stats.instructions_fast_forwarded)

        def checkpoint():
            if self.checkpointer is None:
                return
            if auditor is not None and auditor.has_pending():
                # An unverified splice may still roll this state back;
                # don't make it durable until the audits resolve.
                return
            saved = self.checkpointer.maybe_save(
                base_instructions + progress(), bytes(main.state.buf),
                cache)
            if saved:
                runtime.checkpoints_written += 1

        t0 = time.perf_counter()

        if recognized is None:
            # No recognizable structure (tiny or phaseless program):
            # degrade to a plain run — still a valid backend result.
            self._plain_run(main, stats, guard, checkpoint)
            wall = time.perf_counter() - t0
            return self._result(main, None, wall, stats, runtime, cache,
                                auditor)

        rip = recognized.ip
        scale = max(1, int(rtc.superstep_scale))
        stride = recognized.stride * scale
        break_ips = frozenset((rip,))
        spec_budget = recognized.speculation_budget(
            config.speculation_budget_factor) * scale
        mean_jump = recognized.mean_gap * stride
        autoscaler = resolve_autoscaler(rtc)
        width = pool.n_workers
        if autoscaler is not None:
            # The chain must be able to feed the pool at its *ceiling*,
            # not just its starting width, or grown workers would have
            # nothing to speculate.
            width = max(width, autoscaler.max_workers)
        max_rollout = config.max_rollout or max(
            1, width * rtc.queue_depth)

        tracker = ExcitationTracker(program.layout, config)
        mask = RelevanceMask(tracker)
        ensemble = default_ensemble(config)
        allocator = Allocator(ensemble, tracker, max_rollout, mask=mask)
        if recognized.training_states:
            # Warm start from the states the recognizer already observed
            # (its wall time was genuinely spent before this run began).
            for trained in recognized.training_states:
                view = tracker.observe(trained)
                if view is not None:
                    ensemble.observe(view)
            ensemble.flush_pending()
            tracker.reset_continuity()

        covered = set()  # relevance keys already speculated successfully
        inflight = {}  # relevance key -> SpeculationTask
        used_entries = set()  # id() of entries that fast-forwarded main
        entry_ids = set()  # id() of every shipped entry
        task_ewma = _DurationEwma()
        superstep_ewma = _DurationEwma()

        def drain(timeout=0.0):
            for outcome in pool.poll(timeout):
                if auditor is not None and auditor.ingest(outcome):
                    continue  # an audit verdict, not a speculation
                key = outcome.task.meta
                inflight.pop(key, None)
                if outcome.status == TASK_OK:
                    task_ewma.update(outcome.duration)
                    covered.add(key)
                    entry = outcome.entry
                    cache.insert(entry)
                    entry_ids.add(id(entry))
                    mask.update_from_entry(entry)
                    stats.speculation_instructions += outcome.instructions
                elif outcome.status == TASK_FAILED:
                    # Garbage prediction: executed, produced nothing.
                    # Cover it anyway — re-speculating the same predicted
                    # state would fail identically (determinism).
                    covered.add(key)
                    stats.speculation_faults += 1
                    stats.speculation_instructions += outcome.instructions
                # crashed / timed-out / stale (shm epoch mismatch —
                # the worker never executed the task): leave uncovered
                # so the target is re-dispatched (respeculation)
                # against a fresh full snapshot if still predicted.

        def dispatch(snapshot, view):
            order = allocator.dispatch_order(mean_jump,
                                             config.min_dispatch_probability)
            chain = allocator.chain
            for idx in order:
                if pool.idle_slots() <= 0:
                    break
                step = chain[idx]
                key = mask.key_for(step)
                if key in covered or key in inflight:
                    continue
                start_buf = tracker.materialize(snapshot, step.word_values)
                if cache.lookup(rip, start_buf) is not None:
                    # A (preloaded or earlier) entry already covers this
                    # target; speculating it again would be pure waste.
                    covered.add(key)
                    continue
                task = pool.submit(rip, stride, spec_budget, start_buf,
                                   meta=key)
                if task is None:
                    break
                inflight[key] = task
                stats.speculations_dispatched += 1
                stats.speculations_executed += 1

        while not main.halted:
            # -- one superstep of real execution -------------------------
            t_step = time.perf_counter()
            executed = 0
            drought = False
            for __ in range(stride):
                result = main.run(max_instructions=recognized.drought_limit(),
                                  break_ips=break_ips)
                executed += result.instructions
                if result.reason != STOP_BREAKPOINT:
                    drought = not main.halted
                    break
            stats.instructions_executed += executed
            if executed:
                superstep_ewma.update(time.perf_counter() - t_step)
            if main.halted:
                break
            if drought:
                # The recognized RIP died (phase change / tail): run
                # plainly to halt. Workers may still be finishing; their
                # entries are simply never used.
                self._plain_run(main, stats, guard, checkpoint)
                break
            if progress() > guard:
                raise EngineError("real engine exceeded instruction guard")

            # -- boundary processing; fast-forwards chain here ------------
            while True:
                stats.supersteps += 1
                if self.boundary_hook is not None:
                    self.boundary_hook(self, stats.supersteps)
                drain(0.0)
                if auditor is not None:
                    rb = auditor.take_rollback()
                    if rb is not None:
                        # A shadow audit refuted an earlier splice:
                        # restore its pre-splice snapshot and re-enter
                        # the boundary. The offending group is already
                        # quarantined, so the segment replays
                        # sequentially from here.
                        auditor.apply_rollback(rb, main, stats)
                        continue
                if autoscaler is not None:
                    target = autoscaler.observe(AutoscaleSignals(
                        stats.supersteps, pool.active_workers,
                        pool.parked_workers, rtc.queue_depth,
                        pool.inflight_count(),
                        sum(allocator.probabilities()) * mean_jump,
                        stride, stats.hits, stats.queries,
                        stats.instructions_executed,
                        stats.instructions_fast_forwarded,
                        runtime.entries_shipped, len(used_entries),
                        runtime.dispatch_backpressure))
                    if target is not None:
                        grown, parked = pool.resize(target)
                        if grown or parked:
                            runtime.autoscale_resizes += 1
                # The supervisor's verdict: a pool that fell below its
                # worker floor degrades the run to sequential execution
                # (no dispatch, no waiting) without touching the cache;
                # after its cooldown, speculation resumes mid-run.
                speculating = pool.speculation_allowed()
                if not speculating:
                    runtime.degraded_boundaries += 1
                buf = main.state.buf
                snapshot = bytes(buf)
                checkpoint()
                view = tracker.observe(snapshot)
                if view is not None:
                    ensemble.observe(view)
                    allocator.advance(view)
                    if speculating:
                        dispatch(snapshot, view)
                stats.queries += 1
                entry = cache.lookup(rip, buf)
                if entry is None and speculating and view is not None:
                    entry = self._await_inflight(
                        pool, drain, inflight, mask, view, task_ewma,
                        superstep_ewma, runtime, cache, rip, buf)
                if entry is None:
                    stats.misses += 1
                    break
                stats.hits += 1
                if stats.first_splice_seconds is None:
                    stats.first_splice_seconds = time.perf_counter() - t0
                pre_splice_count = base_instructions + progress()
                applied = entry
                if pool.faults is not None and id(entry) in entry_ids:
                    # Entry-level fault injection (the CRC-valid
                    # divergence class only the verify subsystem can
                    # catch) lands at *splice* time: the splice sequence
                    # is the deterministic main-thread trajectory,
                    # whereas arrival order varies with OS scheduling
                    # and could spend a taint on an entry that is never
                    # used — an unobservable fault.
                    if pool.faults.next_entry_fault() == "taint":
                        applied = pool.faults.taint_entry(entry)
                        runtime.faults_injected += 1
                applied.apply(buf)
                if id(entry) in entry_ids:
                    used_entries.add(id(entry))
                stats.instructions_fast_forwarded += applied.length
                if auditor is not None and auditor.verify_splice(
                        applied, buf, snapshot, stats, pool=pool,
                        instruction_count=pre_splice_count):
                    # Strict/inline audit refuted the splice; it is
                    # already rolled back — replay sequentially.
                    break
                if progress() > guard:
                    raise EngineError("fast-forward exceeded instruction "
                                      "guard; cyclic cache entry?")
                if main.halted:
                    break

        # -- audit epilogue: no run ends on an unverified splice ---------
        if auditor is not None:
            auditor.flush(drain)
            rb = auditor.take_rollback()
            if rb is not None:
                # A refuted splice survived to the end of the run: roll
                # back to its pre-splice snapshot and replay the rest
                # sequentially (the offending group is quarantined).
                auditor.apply_rollback(rb, main, stats)
                self._plain_run(main, stats, guard, checkpoint)
        wall = time.perf_counter() - t0
        drain(0.0)  # final sweep so the counters reflect stragglers
        if autoscaler is not None:
            runtime.autoscale_decisions.extend(autoscaler.decisions)
            del runtime.autoscale_decisions[:-512]
        runtime.entries_used = len(used_entries)
        runtime.tasks_wasted = runtime.entries_shipped - len(used_entries)
        return self._result(main, recognized, wall, stats, runtime, cache,
                            auditor)

    def _plain_run(self, main, stats, guard, checkpoint):
        """Sequential execution to halt, chunked so checkpoints still
        land at their cadence even without superstep boundaries."""
        chunk = guard
        if self.checkpointer is not None \
                and self.checkpointer.every_instructions is not None:
            chunk = max(1, self.checkpointer.every_instructions)
        while not main.halted:
            remaining = guard - stats.instructions_executed
            if remaining <= 0:
                break
            result = main.run(max_instructions=min(chunk, remaining))
            stats.instructions_executed += result.instructions
            if not main.halted:
                checkpoint()
            if result.instructions == 0:
                break

    def _await_inflight(self, pool, drain, inflight, mask, view, task_ewma,
                        superstep_ewma, runtime, cache, rip, buf):
        """Maybe wait for a worker already speculating the current state.

        Executing the superstep ourselves costs ~``superstep_ewma`` and
        discards the worker's (near-finished) effort; waiting costs its
        estimated remaining time. Wait only when that is the cheaper
        side of the ledger, scaled by ``inflight_wait_bias``.
        """
        rtc = self.runtime_config
        key = mask.key(view.word_values)
        task = inflight.get(key)
        if task is None:
            return None
        now = time.monotonic()
        exec_cost = superstep_ewma.value
        expected = task_ewma.value
        if exec_cost is not None and expected is not None:
            remaining = max(0.0, task.dispatch_time + expected - now)
            if remaining > exec_cost * rtc.inflight_wait_bias:
                return None
        elif rtc.inflight_wait_bias <= 1.0:
            return None  # no estimates yet: don't gamble
        deadline = now + min(rtc.max_inflight_wait_seconds,
                             rtc.task_timeout_seconds or float("inf"))
        runtime.inflight_waits += 1
        t_wait = time.perf_counter()
        while key in inflight and time.monotonic() < deadline:
            drain(min(0.05, deadline - time.monotonic()))
        runtime.inflight_wait_seconds += time.perf_counter() - t_wait
        return cache.lookup(rip, buf)

    def _result(self, main, recognized, wall, stats, runtime, cache,
                auditor=None):
        result = RealParallelResult(
            self.program.name, self.runtime_config.n_workers
            if self.pool is None else self.pool.n_workers,
            recognized, wall,
            stats.instructions_executed + stats.instructions_fast_forwarded,
            stats, runtime, cache, bytes(main.state.buf), main.halted, main)
        result.audit = auditor.report() if auditor is not None else None
        # End-of-run resource picture: where the transport's shm really
        # lives, what headroom is left, and which degradation paths this
        # run actually took (all zero on a healthy host).
        result.resources = {
            "shm_backing_dir": resources.shm_backing_dir(),
            "shm_headroom_bytes": resources.shm_headroom_bytes(),
            "worker_rlimit_as_bytes":
                self.runtime_config.worker_rlimit_as_bytes,
            "pressure": {
                "shm_fallbacks": runtime.shm_fallbacks,
                "shm_fallback_bytes": runtime.shm_fallback_bytes,
                "shm_alloc_failures": runtime.shm_alloc_failures,
                "ring_full_events": runtime.ring_full_backpressure,
                "tasks_oom": runtime.tasks_oom,
            },
        }
        return result
