"""Configuration for the multiprocess runtime backend."""

import multiprocessing
import os


def default_start_method():
    """``fork`` where the platform offers it (cheap, inherits the warm
    import state), else ``spawn``. Override with ``REPRO_MP_START``."""
    env = os.environ.get("REPRO_MP_START")
    if env:
        return env
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


class RuntimeConfig:
    """Tunables for :class:`~repro.runtime.pool.WorkerPool` and
    :class:`~repro.runtime.engine.RealParallelEngine`.

    Kept separate from :class:`~repro.core.config.EngineConfig`: these
    knobs describe the *execution substrate* (processes, pipes,
    deadlines), not the learning machinery, and the simulated backend
    never reads them.
    """

    def __init__(self,
                 n_workers=2,
                 # In-flight tasks per worker. 1 is strict one-at-a-time;
                 # 2 lets the engine queue the next assignment while a
                 # worker is busy (the pipe buffers it), so workers go
                 # back-to-back without a dispatch round-trip.
                 queue_depth=2,
                 # Hard per-task deadline. A worker whose oldest task is
                 # older than this is killed and respawned — the defense
                 # against a hung pipe or a runaway speculation.
                 task_timeout_seconds=30.0,
                 # Boundary scheduling: when the current state matches an
                 # in-flight speculation, the engine may *wait* for that
                 # worker instead of re-executing the superstep itself.
                 # It waits only when the task's estimated remaining time
                 # is under ``inflight_wait_bias`` x the cost of just
                 # executing; a huge bias means "always wait" (used by
                 # the differential tests to make hits deterministic).
                 inflight_wait_bias=1.0,
                 max_inflight_wait_seconds=10.0,
                 # Superstep coarsening: the real engine multiplies the
                 # recognized stride by this factor. Real boundaries cost
                 # real milliseconds (observe + predict + dispatch), so
                 # wall-clock runs want paper-scale supersteps even where
                 # the recognizer validated at simulation-scale ones;
                 # granularity is a runtime policy, not a recognition
                 # result. Predictors adapt to the scaled increments
                 # within a few boundaries.
                 superstep_scale=1,
                 # Pool lifecycle.
                 start_method=None,
                 respawn_limit=32,
                 max_instructions=500_000_000):
        self.n_workers = n_workers
        self.queue_depth = queue_depth
        self.task_timeout_seconds = task_timeout_seconds
        self.inflight_wait_bias = inflight_wait_bias
        self.max_inflight_wait_seconds = max_inflight_wait_seconds
        self.superstep_scale = superstep_scale
        self.start_method = start_method
        self.respawn_limit = respawn_limit
        self.max_instructions = max_instructions

    def replace(self, **kwargs):
        """A copy with the given fields overridden."""
        fields = dict(self.__dict__)
        fields.update(kwargs)
        return RuntimeConfig(**fields)

    def __repr__(self):
        inner = ", ".join("%s=%r" % kv for kv in sorted(self.__dict__.items()))
        return "RuntimeConfig(%s)" % inner
