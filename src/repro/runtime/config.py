"""Configuration for the multiprocess runtime backend."""

import multiprocessing
import os


def default_start_method():
    """``fork`` where the platform offers it (cheap, inherits the warm
    import state), else ``spawn``. Override with ``REPRO_MP_START``."""
    env = os.environ.get("REPRO_MP_START")
    if env:
        return env
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


#: Valid state-transport names (see DESIGN.md §11).
TRANSPORTS = ("shm", "pipe")


def default_transport():
    """``shm`` (ring buffers + control messages) wherever
    ``multiprocessing.shared_memory`` exists, else the ``pipe``
    fallback. Override with ``REPRO_TRANSPORT``."""
    env = os.environ.get("REPRO_TRANSPORT")
    if env:
        return env
    from repro.runtime.shm import shm_available
    return "shm" if shm_available() else "pipe"


class RuntimeConfig:
    """Tunables for :class:`~repro.runtime.pool.WorkerPool` and
    :class:`~repro.runtime.engine.RealParallelEngine`.

    Kept separate from :class:`~repro.core.config.EngineConfig`: these
    knobs describe the *execution substrate* (processes, pipes,
    deadlines), not the learning machinery, and the simulated backend
    never reads them.
    """

    def __init__(self,
                 n_workers=2,
                 # In-flight tasks per worker. 1 is strict one-at-a-time;
                 # 2 lets the engine queue the next assignment while a
                 # worker is busy (the pipe buffers it), so workers go
                 # back-to-back without a dispatch round-trip.
                 queue_depth=2,
                 # Hard per-task deadline. A worker whose oldest task is
                 # older than this is killed and respawned — the defense
                 # against a hung pipe or a runaway speculation.
                 task_timeout_seconds=30.0,
                 # Boundary scheduling: when the current state matches an
                 # in-flight speculation, the engine may *wait* for that
                 # worker instead of re-executing the superstep itself.
                 # It waits only when the task's estimated remaining time
                 # is under ``inflight_wait_bias`` x the cost of just
                 # executing; a huge bias means "always wait" (used by
                 # the differential tests to make hits deterministic).
                 inflight_wait_bias=1.0,
                 max_inflight_wait_seconds=10.0,
                 # Superstep coarsening: the real engine multiplies the
                 # recognized stride by this factor. Real boundaries cost
                 # real milliseconds (observe + predict + dispatch), so
                 # wall-clock runs want paper-scale supersteps even where
                 # the recognizer validated at simulation-scale ones;
                 # granularity is a runtime policy, not a recognition
                 # result. Predictors adapt to the scaled increments
                 # within a few boundaries.
                 superstep_scale=1,
                 # Pool lifecycle. ``respawn_limit`` is a global budget
                 # spent by respawns and quarantine re-admissions; once
                 # exhausted, failing slots are retired (the pool
                 # shrinks) instead of respawned.
                 start_method=None,
                 respawn_limit=32,
                 max_instructions=500_000_000,
                 # Supervision (see runtime/supervisor.py). A worker slot
                 # whose consecutive crash/timeout streak reaches
                 # ``breaker_threshold`` is quarantined with exponential
                 # backoff instead of respawned; below
                 # ``min_active_workers`` live workers the run degrades
                 # to sequential execution and re-enables speculation
                 # only after ``degrade_cooldown_seconds`` of restored
                 # capacity.
                 breaker_threshold=3,
                 quarantine_backoff_seconds=0.25,
                 quarantine_backoff_max_seconds=30.0,
                 min_active_workers=1,
                 degrade_cooldown_seconds=1.0,
                 # Transport hardening: reject any frame longer than this
                 # when reading from a pipe — and any shm blob a control
                 # frame names — so one corrupt length field cannot make
                 # either endpoint allocate gigabytes. The offender is
                 # treated as a crashed worker.
                 max_frame_bytes=64 * 1024 * 1024,
                 # State transport: "shm" ships start states and cache
                 # entries through per-worker shared-memory rings with
                 # delta compression, leaving only small control frames
                 # on the pipes; "pipe" is the original inline-payload
                 # fallback. None follows REPRO_TRANSPORT, defaulting
                 # to shm where the platform supports it.
                 transport=None,
                 # Per-direction ring capacity per worker. A blob the
                 # ring cannot take right now — oversized or merely
                 # full — falls back to an inline pipe frame; shm
                 # pressure degrades throughput, never refuses a
                 # dispatch.
                 shm_ring_bytes=1 << 20,
                 # Deterministic fault injection: a FaultPlan instance, a
                 # spec string ("seed=42,kill=2,corrupt=1"), or None.
                 # When None, REPRO_FAULT_PLAN supplies a spec.
                 fault_plan=None,
                 # Per-worker address-space cap (RLIMIT_AS, bytes). A
                 # runaway speculation then hits a contained MemoryError
                 # (reported as a failed task) or at worst dies as an
                 # ordinary worker crash, instead of taking the host.
                 # None follows REPRO_WORKER_RLIMIT_AS (unset = no cap);
                 # 0 explicitly disables the cap.
                 worker_rlimit_as_bytes=None,
                 # Elastic autoscaling (runtime/autoscaler.py): "off"
                 # keeps the fixed-width pool; "react"/"hist"/"reg"
                 # sample the policy at every superstep boundary and
                 # resize the pool toward its target. ``n_workers``
                 # stays the starting width; the policy moves within
                 # [autoscale_min_workers, autoscale_max_workers]
                 # (None: n_workers), deciding at most once per
                 # ``autoscale_cooldown`` boundaries over a payoff
                 # window of ``autoscale_window`` samples.
                 autoscale="off",
                 autoscale_min_workers=0,
                 autoscale_max_workers=None,
                 autoscale_cooldown=8,
                 autoscale_window=16):
        self.n_workers = n_workers
        self.queue_depth = queue_depth
        self.task_timeout_seconds = task_timeout_seconds
        self.inflight_wait_bias = inflight_wait_bias
        self.max_inflight_wait_seconds = max_inflight_wait_seconds
        self.superstep_scale = superstep_scale
        self.start_method = start_method
        self.respawn_limit = respawn_limit
        self.max_instructions = max_instructions
        self.breaker_threshold = breaker_threshold
        self.quarantine_backoff_seconds = quarantine_backoff_seconds
        self.quarantine_backoff_max_seconds = quarantine_backoff_max_seconds
        self.min_active_workers = min_active_workers
        self.degrade_cooldown_seconds = degrade_cooldown_seconds
        self.max_frame_bytes = max_frame_bytes
        self.transport = transport or default_transport()
        if self.transport not in TRANSPORTS:
            raise ValueError("transport must be one of %s, not %r"
                             % ("/".join(TRANSPORTS), self.transport))
        self.shm_ring_bytes = shm_ring_bytes
        self.fault_plan = fault_plan
        if worker_rlimit_as_bytes is None:
            from repro.runtime.resources import default_worker_rlimit_as
            worker_rlimit_as_bytes = default_worker_rlimit_as()
        # Normalized to bytes-or-None; 0 means "explicitly uncapped".
        self.worker_rlimit_as_bytes = worker_rlimit_as_bytes or None
        if autoscale not in ("off", "react", "hist", "reg"):
            raise ValueError("autoscale must be off/react/hist/reg, not %r"
                             % (autoscale,))
        self.autoscale = autoscale
        self.autoscale_min_workers = autoscale_min_workers
        self.autoscale_max_workers = autoscale_max_workers
        self.autoscale_cooldown = autoscale_cooldown
        self.autoscale_window = autoscale_window

    def resolve_fault_plan(self):
        """The effective plan: the configured one, or REPRO_FAULT_PLAN."""
        from repro.runtime.faults import FaultPlan, resolve_fault_plan
        if self.fault_plan is not None:
            return resolve_fault_plan(self.fault_plan)
        spec = os.environ.get("REPRO_FAULT_PLAN")
        return FaultPlan.parse(spec) if spec else None

    def replace(self, **kwargs):
        """A copy with the given fields overridden."""
        fields = dict(self.__dict__)
        fields.update(kwargs)
        return RuntimeConfig(**fields)

    def __repr__(self):
        inner = ", ".join("%s=%r" % kv for kv in sorted(self.__dict__.items()))
        return "RuntimeConfig(%s)" % inner
