"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class EncodingError(ReproError):
    """An instruction could not be encoded or decoded."""


class AssemblerError(ReproError):
    """Assembly source was malformed."""

    def __init__(self, message, line=None):
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)
        self.line = line


class MiniCError(ReproError):
    """Mini-C source was malformed (lexical, syntactic, or semantic)."""

    def __init__(self, message, line=None):
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)
        self.line = line


class MachineError(ReproError):
    """The simulated machine entered an illegal configuration."""


class SegmentationFault(MachineError):
    """A memory access fell outside the mapped state vector."""


class IllegalInstruction(MachineError):
    """The transition function fetched an undecodable instruction."""


class CodeWriteError(MachineError):
    """A store targeted the write-protected code region."""


class LoaderError(ReproError):
    """A program image could not be laid out in memory."""


class EngineError(ReproError):
    """The ASC engine was misconfigured or diverged."""
