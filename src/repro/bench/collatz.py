"""The Collatz kernel: exhaustive 3x+1 convergence testing (§5.1).

"This program iterates over the positive integers in its outer loop, and
in its inner loop performs a notoriously chaotic property test." The
outer loop is trivially parallel (and LASC finds it); the inner loop's
shared convergence suffixes are what the single-core memoization
experiment (Figure 6, right) exploits.
"""

from string import Template

from repro.bench.workload import Workload
from repro.core.config import EngineConfig
from repro.minic import compile_source

_SOURCE = Template("""
// Collatz kernel: test 3x+1 convergence for 1..limit
int limit = $count;
int verified;

int main() {
    int n;
    for (n = 1; n <= limit; n++) {
        int x = n;
        while (x != 1) {
            if (x % 2 == 0) {
                x = x / 2;
            } else {
                x = 3 * x + 1;
            }
        }
        verified++;
    }
    return verified;
}
""")


def _reference_collatz(count):
    verified = 0
    for n in range(1, count + 1):
        x = n
        while x != 1:
            x = x // 2 if x % 2 == 0 else 3 * x + 1
        verified += 1
    return verified


def build_collatz(count=2000, memoize=False):
    """Build the Collatz workload testing integers 1..count.

    ``memoize=True`` configures the recognizer for the single-core
    generalized-memoization experiment: fine superstep granularity inside
    the chaotic inner loop rather than coarse outer-loop supersteps.
    """
    source = _SOURCE.substitute(count=count)
    program = compile_source(source, name="collatz")
    verified = _reference_collatz(count)

    if memoize:
        config = EngineConfig(
            recognizer_window=30_000,
            min_superstep_instructions=60,
            recognizer_validate_states=96,
            memo_block=6,
        )
    else:
        config = EngineConfig(
            recognizer_window=60_000,
            min_superstep_instructions=800,
        )
    return Workload(
        "collatz", program, config=config,
        params=dict(count=count, memoize=memoize),
        expected=dict(verified=verified),
        description="Collatz conjecture test for 1..%d" % count)
