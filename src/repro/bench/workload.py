"""Workload: a compiled benchmark plus its engine configuration."""

from repro.core.config import EngineConfig

#: The paper's measured superstep, in simulated seconds: an average jump
#: of ~1.2e7 instructions at the dependency-tracking rate of 2.3 MIPS.
PAPER_SUPERSTEP_SECONDS = 1.2e7 / 2.3e6


class Workload:
    """A benchmark program bundled with how to run it.

    ``params`` records the scaled-down sizes; ``expected`` optionally
    carries ground-truth values the tests verify program correctness
    against (independent of any ASC machinery).
    """

    def __init__(self, name, program, config=None, params=None,
                 expected=None, description=""):
        self.name = name
        self.program = program
        self.config = config or EngineConfig()
        self.params = dict(params or {})
        self.expected = dict(expected or {})
        self.description = description

    def __repr__(self):
        return "Workload(%r, params=%r)" % (self.name, self.params)
