"""Analytic hand-parallelized baseline for the Ising benchmark.

Figure 4's "hand-parallelized scaling" line comes from a manual
parallelization the paper describes: "first iterating over the list,
partitioning it into up to 32 separate lists and then computing on each
list in parallel." This module models that program's time analytically
from the measured sequential run: a sequential partitioning pass over
the list, perfectly parallel energy computation over the largest
partition, and a final reduction over per-core minima.
"""

import math


def hand_parallel_scaling(n_cores, total_instructions, nodes,
                          partition_instructions_per_node=12,
                          reduce_instructions_per_core=16):
    """Predicted scaling of the hand-parallelized Ising at ``n_cores``.

    The energy work (all of ``total_instructions`` minus the list walk)
    divides over cores at the granularity of whole nodes; the walk that
    splits the list and the min-reduction remain sequential.
    """
    if n_cores < 1:
        raise ValueError("n_cores must be >= 1")
    split_cost = nodes * partition_instructions_per_node
    reduce_cost = n_cores * reduce_instructions_per_core
    work = max(total_instructions - split_cost, 1)
    largest_partition = math.ceil(nodes / n_cores) / nodes
    parallel_time = split_cost + work * largest_partition + reduce_cost
    return total_instructions / parallel_time
