"""The Ising kernel: pointer-based minimum-energy search (§5.1).

"The program walks a linked list of spin configurations, looking for the
element in the list producing the lowest energy state. Computing the
energy for each configuration is computationally intensive." The list
nodes are bump-allocated in traversal order — the property that makes
next-pointer addresses a learnable affine sequence, which is how the
paper says LASC parallelizes this kernel ("by predicting the addresses
of linked list elements").

Spin configurations are the program's input and are embedded as
compile-time data, generated from a seeded RNG in the builder.
"""

import random
from string import Template

from repro.bench.workload import Workload
from repro.core.config import EngineConfig
from repro.minic import compile_source

_SOURCE = Template("""
// Ising kernel: minimum-energy search over a linked list of spin
// configurations. NODES=$nodes SPINS=$spins
struct node {
    struct node *next;
    int *config;
};

struct node pool[$nodes];
int spin_data[$total_spins] = { $spin_values };
struct node *head;
int best_energy;
int result_energy;
int result_index;

void build_list(void) {
    int i;
    for (i = 0; i < $nodes; i++) {
        pool[i].config = &spin_data[i * $spins];
        if (i + 1 < $nodes) {
            pool[i].next = &pool[i + 1];
        } else {
            pool[i].next = 0;
        }
    }
    head = &pool[0];
}

int coupling(int j, int k) {
    return (j * 31 + k * 17) % 7 - 3;
}

int energy(struct node *p) {
    int e = 0;
    int j;
    int k;
    int *c = p->config;
    for (j = 0; j < $spins; j++) {
        for (k = j + 1; k < $spins; k++) {
            e = e - c[j] * c[k] * coupling(j, k);
        }
    }
    return e;
}

int main() {
    struct node *p;
    int index = 0;
    build_list();
    best_energy = 2147483647;
    result_index = 0 - 1;
    p = head;
    while (p != 0) {
        int e = energy(p);
        if (e < best_energy) {
            best_energy = e;
            result_index = index;
        }
        p = p->next;
        index = index + 1;
    }
    result_energy = best_energy;
    return result_energy;
}
""")


def _reference_energy(config, spins):
    total = 0
    for j in range(spins):
        for k in range(j + 1, spins):
            coupling = (j * 31 + k * 17) % 7 - 3
            total -= config[j] * config[k] * coupling
    return total


def build_ising(nodes=512, spins=16, seed=12345):
    """Build the Ising workload at the given list length."""
    rng = random.Random(seed)
    spin_values = [rng.choice((-1, 1)) for __ in range(nodes * spins)]
    source = _SOURCE.substitute(
        nodes=nodes,
        spins=spins,
        total_spins=nodes * spins,
        spin_values=", ".join(str(v) for v in spin_values),
    )
    program = compile_source(source, name="ising")

    energies = [
        _reference_energy(spin_values[i * spins:(i + 1) * spins], spins)
        for i in range(nodes)]
    best = min(energies)
    # The search window must span the list-construction phase plus
    # enough walk supersteps to validate predictability; the adaptive
    # recognizer widens it further if this estimate falls short.
    superstep_estimate = spins * (spins - 1) // 2 * 75 + 250
    window = nodes * 85 + 32 * superstep_estimate
    config = EngineConfig(
        recognizer_window=window,
        min_superstep_instructions=max(400, spins * spins * 4),
    )
    return Workload(
        "ising", program, config=config,
        params=dict(nodes=nodes, spins=spins, seed=seed),
        expected=dict(best_energy=best,
                      best_index=energies.index(best)),
        description="linked-list minimum-energy search, %d nodes x %d "
                    "spins" % (nodes, spins))
