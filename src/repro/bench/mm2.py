"""Polybench/C 2mm: D = alpha*A*B*C + beta*D over integer matrices (§5.1).

Two chained matrix multiplications: tmp = alpha*A*B, then
D = tmp*C + beta*D. The inner dot product is factored into a helper
function that both loop nests call, giving the whole kernel one repeated
instruction-pointer hyperplane — the same structure the paper's
recognizer latches onto for Ising ("a few instructions into the prologue
of the energy function"). The matrices are the program's input and are
embedded as compile-time data.
"""

import random
from string import Template

from repro.bench.workload import Workload
from repro.core.config import EngineConfig
from repro.minic import compile_source

_SOURCE = Template("""
// Polybench/C 2mm: D = alpha*A*B*C + beta*D, N=$n
int A[$n2] = { $a_values };
int B[$n2] = { $b_values };
int C[$n2] = { $c_values };
int D[$n2] = { $d_values };
int tmp[$n2];
int alpha = $alpha;
int beta = $beta;
int checksum;

int dot(int *a, int *b) {
    int acc = 0;
    int k;
    for (k = 0; k < $n; k++) {
        acc += a[k] * b[k * $n];
    }
    return acc;
}

void mm2_kernel(void) {
    int i;
    int j;
    for (i = 0; i < $n; i++) {
        for (j = 0; j < $n; j++) {
            tmp[i * $n + j] = alpha * dot(&A[i * $n], &B[j]);
        }
    }
    for (i = 0; i < $n; i++) {
        for (j = 0; j < $n; j++) {
            D[i * $n + j] = beta * D[i * $n + j] + dot(&tmp[i * $n], &C[j]);
        }
    }
}

int main() {
    int i;
    int sum = 0;
    mm2_kernel();
    for (i = 0; i < $n2; i++) {
        sum += D[i];
    }
    checksum = sum;
    return checksum;
}
""")


def _reference_2mm(a, b, c, d, alpha, beta, n):
    mask = (1 << 32) - 1

    def wrap(v):
        v &= mask
        return v - (1 << 32) if v >= (1 << 31) else v

    tmp = [[0] * n for __ in range(n)]
    for i in range(n):
        for j in range(n):
            acc = 0
            for k in range(n):
                acc = wrap(acc + wrap(a[i][k] * b[k][j]))
            tmp[i][j] = wrap(alpha * acc)
    out = [[0] * n for __ in range(n)]
    for i in range(n):
        for j in range(n):
            acc = 0
            for k in range(n):
                acc = wrap(acc + wrap(tmp[i][k] * c[k][j]))
            out[i][j] = wrap(wrap(beta * d[i][j]) + acc)
    return out


def build_mm2(n=14, alpha=3, beta=2, seed=777):
    """Build the 2mm workload over n x n matrices."""
    rng = random.Random(seed)

    def matrix():
        return [[rng.randint(-9, 9) for __ in range(n)] for __ in range(n)]

    a, b, c, d = matrix(), matrix(), matrix(), matrix()

    def flat(m):
        return ", ".join(str(v) for row in m for v in row)

    source = _SOURCE.substitute(
        n=n, n2=n * n, alpha=alpha, beta=beta,
        a_values=flat(a), b_values=flat(b), c_values=flat(c),
        d_values=flat(d))
    program = compile_source(source, name="2mm")

    result = _reference_2mm(a, b, c, d, alpha, beta, n)
    mask = (1 << 32) - 1
    checksum = 0
    for row in result:
        for v in row:
            checksum = (checksum + v) & mask
    if checksum >= 1 << 31:
        checksum -= 1 << 32

    config = EngineConfig(
        recognizer_window=60_000,
        min_superstep_instructions=max(300, n * 25),
    )
    return Workload(
        "2mm", program, config=config,
        params=dict(n=n, alpha=alpha, beta=beta, seed=seed),
        expected=dict(checksum=checksum, d_matrix=result),
        description="Polybench 2mm, %dx%d integer matrices" % (n, n))
