"""The paper's three benchmarks (§5.1), compiled from Mini-C.

* ``ising`` — pointer-chasing condensed-matter kernel: walk a linked
  list of spin configurations, computing each one's energy and tracking
  the minimum. Dynamic data structures defeat static parallelization;
  LASC parallelizes it by *predicting the addresses* of list nodes.
* ``mm2`` — Polybench/C 2mm: D = alpha*A*B*C + beta*D over square
  integer matrices; regular loops, classic compiler territory.
* ``collatz`` — iterate over integers testing the notoriously chaotic
  3x+1 convergence; embarrassingly parallel outer loop, and inner-loop
  structure that single-core LASC exploits as generalized memoization.

Each builder embeds the benchmark's input data (spin configurations,
matrices) as compile-time initializers — the paper's programs likewise
load all input up front and perform no I/O.
"""

from repro.bench.workload import Workload
from repro.bench.ising import build_ising
from repro.bench.mm2 import build_mm2
from repro.bench.collatz import build_collatz
from repro.bench.handparallel import hand_parallel_scaling

__all__ = ["Workload", "build_ising", "build_mm2", "build_collatz",
           "hand_parallel_scaling", "WORKLOAD_BUILDERS"]

WORKLOAD_BUILDERS = {
    "ising": build_ising,
    "2mm": build_mm2,
    "collatz": build_collatz,
}
