"""Recursive-descent parser for Mini-C."""

from repro.errors import MiniCError
from repro.minic import ast
from repro.minic.lexer import EOF, IDENT, KW, NUMBER, OP, tokenize

_ASSIGN_OPS = frozenset(["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                         "<<=", ">>="])

# Binary operator precedence levels, low to high binding strength.
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    def __init__(self, source):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    def peek(self, ahead=0):
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self):
        tok = self.tokens[self.pos]
        if tok.kind != EOF:
            self.pos += 1
        return tok

    def at_op(self, *ops):
        tok = self.peek()
        return tok.kind == OP and tok.value in ops

    def at_kw(self, *kws):
        tok = self.peek()
        return tok.kind == KW and tok.value in kws

    def accept_op(self, *ops):
        if self.at_op(*ops):
            return self.next()
        return None

    def expect_op(self, op):
        tok = self.next()
        if tok.kind != OP or tok.value != op:
            raise MiniCError("expected %r, got %r" % (op, tok.value),
                             line=tok.line)
        return tok

    def expect_ident(self):
        tok = self.next()
        if tok.kind != IDENT:
            raise MiniCError("expected identifier, got %r" % (tok.value,),
                             line=tok.line)
        return tok

    # -- types ----------------------------------------------------------------

    def at_type(self):
        return self.at_kw("int", "void", "struct")

    def parse_type_prefix(self):
        """Parse ``int`` / ``void`` / ``struct Name`` plus ``*`` depth."""
        tok = self.next()
        if tok.kind != KW or tok.value not in ("int", "void", "struct"):
            raise MiniCError("expected type, got %r" % (tok.value,),
                             line=tok.line)
        if tok.value == "struct":
            name = self.expect_ident()
            base = ("struct", name.value)
        else:
            base = tok.value
        depth = 0
        while self.accept_op("*"):
            depth += 1
        return base, depth, tok.line

    def parse_type_spec_after_name(self, base, depth, line):
        """Parse the optional ``[len]`` suffix after a declarator name."""
        array_len = None
        if self.accept_op("["):
            array_len = self.parse_expression()
            self.expect_op("]")
        return ast.TypeSpec(line, base=base, ptr_depth=depth,
                            array_len=array_len)

    # -- top level ----------------------------------------------------------------

    def parse_translation_unit(self):
        structs = []
        globals_ = []
        functions = []
        while self.peek().kind != EOF:
            if self.at_kw("struct") and self.peek(2).kind == OP \
                    and self.peek(2).value == "{":
                structs.append(self.parse_struct_def())
                continue
            base, depth, line = self.parse_type_prefix()
            name = self.expect_ident()
            if self.at_op("("):
                functions.append(self.parse_function(base, depth, line, name))
            else:
                globals_.extend(self.parse_global(base, depth, line, name))
        return ast.TranslationUnit(1, structs=structs, globals=globals_,
                                   functions=functions)

    def parse_struct_def(self):
        kw = self.next()  # 'struct'
        name = self.expect_ident()
        self.expect_op("{")
        members = []
        while not self.at_op("}"):
            base, depth, line = self.parse_type_prefix()
            mem_name = self.expect_ident()
            spec = self.parse_type_spec_after_name(base, depth, line)
            self.expect_op(";")
            members.append((spec, mem_name.value))
        self.expect_op("}")
        self.expect_op(";")
        return ast.StructDef(kw.line, name=name.value, members=members)

    def parse_global(self, base, depth, line, name):
        """Parse one or more comma-separated global declarators."""
        out = []
        while True:
            spec = self.parse_type_spec_after_name(base, depth, line)
            init = None
            if self.accept_op("="):
                init = self.parse_initializer()
            out.append(ast.GlobalVar(line, type_spec=spec, name=name.value,
                                     init=init))
            if self.accept_op(","):
                while self.accept_op("*"):
                    depth += 1  # allow `int a, *b;`
                name = self.expect_ident()
                continue
            self.expect_op(";")
            return out

    def parse_initializer(self):
        if self.accept_op("{"):
            values = []
            while not self.at_op("}"):
                values.append(self.parse_assignment())
                if not self.accept_op(","):
                    break
            self.expect_op("}")
            return values
        return self.parse_assignment()

    def parse_function(self, base, depth, line, name):
        self.expect_op("(")
        params = []
        if not self.at_op(")"):
            if self.at_kw("void") and self.peek(1).kind == OP \
                    and self.peek(1).value == ")":
                self.next()  # f(void)
            else:
                while True:
                    p_base, p_depth, p_line = self.parse_type_prefix()
                    p_name = self.expect_ident()
                    spec = self.parse_type_spec_after_name(p_base, p_depth,
                                                           p_line)
                    params.append((spec, p_name.value))
                    if not self.accept_op(","):
                        break
        self.expect_op(")")
        return_type = ast.TypeSpec(line, base=base, ptr_depth=depth,
                                   array_len=None)
        body = self.parse_block()
        return ast.FunctionDef(line, return_type=return_type, name=name.value,
                               params=params, body=body)

    # -- statements -------------------------------------------------------------

    def parse_block(self):
        brace = self.expect_op("{")
        statements = []
        while not self.at_op("}"):
            statements.append(self.parse_statement())
        self.expect_op("}")
        return ast.Block(brace.line, statements=statements)

    def parse_statement(self):
        tok = self.peek()
        if self.at_op("{"):
            return self.parse_block()
        if self.at_type():
            return self.parse_decl_statement()
        if self.at_kw("if"):
            return self.parse_if()
        if self.at_kw("while"):
            return self.parse_while()
        if self.at_kw("for"):
            return self.parse_for()
        if self.at_kw("return"):
            self.next()
            value = None
            if not self.at_op(";"):
                value = self.parse_expression()
            self.expect_op(";")
            return ast.ReturnStmt(tok.line, value=value)
        if self.at_kw("break"):
            self.next()
            self.expect_op(";")
            return ast.BreakStmt(tok.line)
        if self.at_kw("continue"):
            self.next()
            self.expect_op(";")
            return ast.ContinueStmt(tok.line)
        if self.accept_op(";"):
            return ast.Block(tok.line, statements=[])
        expr = self.parse_expression()
        self.expect_op(";")
        return ast.ExprStmt(tok.line, expr=expr)

    def parse_decl_statement(self):
        base, depth, line = self.parse_type_prefix()
        name = self.expect_ident()
        spec = self.parse_type_spec_after_name(base, depth, line)
        init = None
        if self.accept_op("="):
            init = self.parse_assignment()
        self.expect_op(";")
        return ast.DeclStmt(line, type_spec=spec, name=name.value, init=init)

    def parse_if(self):
        kw = self.next()
        self.expect_op("(")
        cond = self.parse_expression()
        self.expect_op(")")
        then_body = self.parse_statement()
        else_body = None
        if self.at_kw("else"):
            self.next()
            else_body = self.parse_statement()
        return ast.IfStmt(kw.line, cond=cond, then_body=then_body,
                          else_body=else_body)

    def parse_while(self):
        kw = self.next()
        self.expect_op("(")
        cond = self.parse_expression()
        self.expect_op(")")
        body = self.parse_statement()
        return ast.WhileStmt(kw.line, cond=cond, body=body)

    def parse_for(self):
        kw = self.next()
        self.expect_op("(")
        init = None
        if not self.at_op(";"):
            if self.at_type():
                init = self.parse_decl_statement()
            else:
                expr = self.parse_expression()
                self.expect_op(";")
                init = ast.ExprStmt(kw.line, expr=expr)
        else:
            self.next()
        cond = None
        if not self.at_op(";"):
            cond = self.parse_expression()
        self.expect_op(";")
        step = None
        if not self.at_op(")"):
            step = self.parse_expression()
        self.expect_op(")")
        body = self.parse_statement()
        return ast.ForStmt(kw.line, init=init, cond=cond, step=step, body=body)

    # -- expressions -------------------------------------------------------------

    def parse_expression(self):
        return self.parse_assignment()

    def parse_assignment(self):
        left = self.parse_binary(0)
        tok = self.peek()
        if tok.kind == OP and tok.value in _ASSIGN_OPS:
            self.next()
            value = self.parse_assignment()  # right associative
            return ast.Assign(tok.line, op=tok.value, target=left, value=value)
        return left

    def parse_binary(self, level):
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while self.at_op(*ops):
            tok = self.next()
            right = self.parse_binary(level + 1)
            left = ast.BinaryOp(tok.line, op=tok.value, left=left, right=right)
        return left

    def parse_unary(self):
        tok = self.peek()
        if tok.kind == OP and tok.value in ("-", "!", "~", "*", "&"):
            self.next()
            operand = self.parse_unary()
            return ast.UnaryOp(tok.line, op=tok.value, operand=operand)
        if tok.kind == OP and tok.value in ("++", "--"):
            self.next()
            target = self.parse_unary()
            return ast.IncDec(tok.line, op=tok.value, target=target,
                              postfix=False)
        if tok.kind == KW and tok.value == "sizeof":
            self.next()
            self.expect_op("(")
            base, depth, line = self.parse_type_prefix()
            spec = ast.TypeSpec(line, base=base, ptr_depth=depth,
                                array_len=None)
            self.expect_op(")")
            return ast.SizeOf(tok.line, type_spec=spec)
        return self.parse_postfix()

    def parse_postfix(self):
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if self.at_op("["):
                self.next()
                index = self.parse_expression()
                self.expect_op("]")
                expr = ast.Index(tok.line, array=expr, index=index)
            elif self.at_op("."):
                self.next()
                name = self.expect_ident()
                expr = ast.Member(tok.line, obj=expr, name=name.value,
                                  arrow=False)
            elif self.at_op("->"):
                self.next()
                name = self.expect_ident()
                expr = ast.Member(tok.line, obj=expr, name=name.value,
                                  arrow=True)
            elif self.at_op("++", "--"):
                op_tok = self.next()
                expr = ast.IncDec(op_tok.line, op=op_tok.value, target=expr,
                                  postfix=True)
            else:
                return expr

    def parse_primary(self):
        tok = self.next()
        if tok.kind == NUMBER:
            return ast.NumberLit(tok.line, value=tok.value)
        if tok.kind == IDENT:
            if self.at_op("("):
                self.next()
                args = []
                if not self.at_op(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept_op(","):
                            break
                self.expect_op(")")
                return ast.Call(tok.line, name=tok.value, args=args)
            return ast.Ident(tok.line, name=tok.value)
        if tok.kind == OP and tok.value == "(":
            expr = self.parse_expression()
            self.expect_op(")")
            return expr
        raise MiniCError("unexpected token %r" % (tok.value,), line=tok.line)


def parse(source):
    """Parse Mini-C source into a :class:`repro.minic.ast.TranslationUnit`."""
    return Parser(source).parse_translation_unit()
