"""Mini-C compiler driver: source text to runnable Program."""

from repro.asm.assembler import assemble_program
from repro.loader.image import (
    DEFAULT_CODE_BASE,
    DEFAULT_STACK_SIZE,
    ProgramHints,
)
from repro.minic.codegen import generate
from repro.minic.parser import parse
from repro.minic.sema import analyze


def compile_to_assembly(source):
    """Compile Mini-C source to SVM32 assembly text."""
    unit = parse(source)
    info = analyze(unit)
    return generate(unit, info)


def _extract_hints(program):
    """Build recognizer hints from the compiler's own label conventions.

    The code generator labels every loop condition ``Lwhile*``/``Lfor*``
    and every function ``fn_*``; those addresses are exactly the
    strategic points §3.2 describes a static-analysis recognizer
    providing ("a condition that ... indicates that the program is at
    the top of a loop or is entering a function that is called
    repeatedly").
    """
    loops = []
    functions = []
    for label, address in program.symbols.items():
        if label.startswith(("Lwhile", "Lfor")):
            loops.append(address)
        elif label.startswith("fn_"):
            functions.append(address)
    return ProgramHints(loop_headers=sorted(loops),
                        function_entries=sorted(functions))


def compile_source(source, name="program", stack_size=DEFAULT_STACK_SIZE,
                   mem_size=None, code_base=DEFAULT_CODE_BASE):
    """Compile Mini-C source all the way to a :class:`Program`.

    The returned program's ``source`` attribute holds the original Mini-C
    text, so lines-of-code statistics (Table 1) reflect the C source, as
    in the paper; ``program.hints`` carries the compiler's loop/function
    addresses for hint-assisted recognition.
    """
    assembly = compile_to_assembly(source)
    program = assemble_program(assembly, name=name, code_base=code_base,
                               stack_size=stack_size, mem_size=mem_size,
                               source_for_loc=source)
    program.hints = _extract_hints(program)
    return program
