"""Semantic analysis for Mini-C.

Builds the struct and symbol tables, resolves every type spec, assigns
stack-frame offsets, and annotates each expression node with its
:mod:`repro.minic.types` type. Codegen runs on the annotated AST and
performs no checking of its own.

Annotations set on nodes:

* every expression node: ``ctype``
* ``Ident``: ``symbol`` (a :class:`GlobalSymbol` or :class:`LocalSymbol`)
* ``Call``: ``symbol`` (:class:`FunctionSymbol`)
* ``Member``: ``offset`` and ``member_type``
* ``BinaryOp``/``Assign``/``IncDec``: ``ptr_scale`` when pointer
  arithmetic needs operand scaling (0 when not)
* ``SizeOf``: ``value``
"""

from repro.errors import MiniCError
from repro.minic import ast
from repro.minic.types import (
    INT,
    VOID,
    ArrayType,
    PtrType,
    StructType,
    WORD,
    assignable,
)


class GlobalSymbol:
    """A global variable: label in the data segment plus initializer."""

    __slots__ = ("name", "ctype", "label", "init_words")

    def __init__(self, name, ctype, label, init_words):
        self.name = name
        self.ctype = ctype
        self.label = label
        self.init_words = init_words  # list of 32-bit ints, or None for zeros

    @property
    def is_global(self):
        return True


class LocalSymbol:
    """A local variable or parameter at a fixed EBP-relative offset."""

    __slots__ = ("name", "ctype", "ebp_offset")

    def __init__(self, name, ctype, ebp_offset):
        self.name = name
        self.ctype = ctype
        self.ebp_offset = ebp_offset

    @property
    def is_global(self):
        return False


class FunctionSymbol:
    __slots__ = ("name", "return_type", "param_types", "label")

    def __init__(self, name, return_type, param_types):
        self.name = name
        self.return_type = return_type
        self.param_types = param_types
        self.label = "fn_%s" % name


class SemanticInfo:
    """Result of analysis: tables consumed by the code generator."""

    def __init__(self):
        self.structs = {}
        self.globals = {}  # name -> GlobalSymbol, in declaration order
        self.functions = {}  # name -> FunctionSymbol
        self.frame_sizes = {}  # function name -> bytes of locals


class Analyzer:
    def __init__(self):
        self.info = SemanticInfo()
        self._scopes = []
        self._current_fn = None
        self._frame_bytes = 0
        self._loop_depth = 0

    # -- types ------------------------------------------------------------

    def resolve_type(self, spec, allow_void=False, allow_array=True):
        if spec.base == "int":
            base = INT
        elif spec.base == "void":
            base = VOID
        else:
            __, name = spec.base
            struct = self.info.structs.get(name)
            if struct is None:
                raise MiniCError("unknown struct %r" % name, line=spec.line)
            base = struct
        ctype = base
        for __ in range(spec.ptr_depth):
            ctype = PtrType(ctype)
        if spec.array_len is not None:
            if not allow_array:
                raise MiniCError("array not allowed here", line=spec.line)
            length = self.const_eval(spec.array_len)
            ctype = ArrayType(ctype, length)
        if ctype.is_void() and not allow_void:
            raise MiniCError("void is not a value type", line=spec.line)
        if ctype.is_struct() and not ctype.complete:
            raise MiniCError("struct %s is incomplete" % ctype.name,
                             line=spec.line)
        return ctype

    def const_eval(self, expr):
        """Evaluate a compile-time constant integer expression."""
        if isinstance(expr, ast.NumberLit):
            return expr.value
        if isinstance(expr, ast.UnaryOp) and expr.op == "-":
            return -self.const_eval(expr.operand)
        if isinstance(expr, ast.BinaryOp):
            left = self.const_eval(expr.left)
            right = self.const_eval(expr.right)
            ops = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
                   "*": lambda a, b: a * b, "/": lambda a, b: a // b,
                   "%": lambda a, b: a % b, "<<": lambda a, b: a << b,
                   ">>": lambda a, b: a >> b}
            if expr.op in ops:
                return ops[expr.op](left, right)
        if isinstance(expr, ast.SizeOf):
            return self.resolve_type(expr.type_spec).size
        raise MiniCError("expression is not a compile-time constant",
                         line=expr.line)

    # -- scopes ---------------------------------------------------------------

    def push_scope(self):
        self._scopes.append({})

    def pop_scope(self):
        self._scopes.pop()

    def declare_local(self, name, ctype, line, ebp_offset=None):
        scope = self._scopes[-1]
        if name in scope:
            raise MiniCError("redeclaration of %r" % name, line=line)
        if ebp_offset is None:
            size = (ctype.size + WORD - 1) // WORD * WORD
            self._frame_bytes += size
            ebp_offset = -self._frame_bytes
        symbol = LocalSymbol(name, ctype, ebp_offset)
        scope[name] = symbol
        return symbol

    def lookup(self, name, line):
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        if name in self.info.globals:
            return self.info.globals[name]
        raise MiniCError("undeclared identifier %r" % name, line=line)

    # -- top level ----------------------------------------------------------------

    def analyze(self, unit):
        for struct_def in unit.structs:
            self._declare_struct(struct_def)
        for global_var in unit.globals:
            self._declare_global(global_var)
        for fn in unit.functions:
            self._declare_function(fn)
        if "main" not in self.info.functions:
            raise MiniCError("program has no main() function")
        for fn in unit.functions:
            self._analyze_function(fn)
        return self.info

    def _declare_struct(self, struct_def):
        if struct_def.name in self.info.structs:
            raise MiniCError("redefinition of struct %r" % struct_def.name,
                             line=struct_def.line)
        struct = StructType(struct_def.name)
        # Register before members so self-referential pointers resolve.
        self.info.structs[struct_def.name] = struct
        for spec, name in struct_def.members:
            member_type = self.resolve_type(spec)
            if member_type.is_struct() and not member_type.complete:
                raise MiniCError(
                    "struct member of incomplete type", line=spec.line)
            struct.add_member(name, member_type)
        struct.finish()

    def _declare_global(self, global_var):
        name = global_var.name
        if name in self.info.globals:
            raise MiniCError("redefinition of global %r" % name,
                             line=global_var.line)
        ctype = self.resolve_type(global_var.type_spec)
        init_words = None
        if global_var.init is not None:
            init_words = self._global_init_words(ctype, global_var.init,
                                                 global_var.line)
        self.info.globals[name] = GlobalSymbol(name, ctype, "g_%s" % name,
                                               init_words)

    def _global_init_words(self, ctype, init, line):
        if isinstance(init, list):
            if not ctype.is_array():
                raise MiniCError("brace initializer on non-array", line=line)
            if not ctype.elem.is_scalar():
                raise MiniCError("initializer on non-scalar array", line=line)
            if len(init) > ctype.length:
                raise MiniCError("too many initializer values", line=line)
            words = [self.const_eval(e) for e in init]
            words.extend([0] * (ctype.length - len(words)))
            return words
        if not ctype.is_scalar():
            raise MiniCError("scalar initializer on aggregate", line=line)
        return [self.const_eval(init)]

    def _declare_function(self, fn):
        if fn.name in self.info.functions:
            raise MiniCError("redefinition of function %r" % fn.name,
                             line=fn.line)
        if fn.name in self.info.globals:
            raise MiniCError("%r is already a global" % fn.name, line=fn.line)
        return_type = self.resolve_type(fn.return_type, allow_void=True,
                                        allow_array=False)
        if not (return_type.is_void() or return_type.is_scalar()):
            raise MiniCError("functions must return void or a scalar",
                             line=fn.line)
        param_types = []
        for spec, name in fn.params:
            ptype = self.resolve_type(spec, allow_array=False)
            if not ptype.is_scalar():
                raise MiniCError("parameter %r must be scalar" % name,
                                 line=spec.line)
            param_types.append(ptype)
        self.info.functions[fn.name] = FunctionSymbol(fn.name, return_type,
                                                      param_types)

    def _analyze_function(self, fn):
        symbol = self.info.functions[fn.name]
        self._current_fn = symbol
        self._frame_bytes = 0
        self.push_scope()
        # Parameters live above the saved EBP and return address.
        for i, (spec, name) in enumerate(fn.params):
            self.declare_local(name, symbol.param_types[i], spec.line,
                               ebp_offset=8 + 4 * i)
        self._analyze_block(fn.body)
        self.pop_scope()
        self.info.frame_sizes[fn.name] = self._frame_bytes
        self._current_fn = None

    # -- statements -------------------------------------------------------------

    def _analyze_block(self, block):
        self.push_scope()
        for stmt in block.statements:
            self._analyze_stmt(stmt)
        self.pop_scope()

    def _analyze_stmt(self, stmt):
        if isinstance(stmt, ast.Block):
            self._analyze_block(stmt)
        elif isinstance(stmt, ast.DeclStmt):
            ctype = self.resolve_type(stmt.type_spec)
            if ctype.is_struct():
                raise MiniCError(
                    "local struct variables are not supported; use a "
                    "global pool", line=stmt.line)
            if ctype.is_array() and not ctype.elem.is_scalar():
                raise MiniCError("local arrays must have scalar elements",
                                 line=stmt.line)
            symbol = self.declare_local(stmt.name, ctype, stmt.line)
            stmt.symbol = symbol
            if stmt.init is not None:
                if ctype.is_array():
                    raise MiniCError("local arrays cannot be initialized",
                                     line=stmt.line)
                init_type = self._analyze_expr(stmt.init)
                if not assignable(ctype, init_type):
                    raise MiniCError(
                        "cannot initialize %s with %s" % (ctype, init_type),
                        line=stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            self._analyze_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self._require_scalar(stmt.cond)
            self._analyze_stmt(stmt.then_body)
            if stmt.else_body is not None:
                self._analyze_stmt(stmt.else_body)
        elif isinstance(stmt, ast.WhileStmt):
            self._require_scalar(stmt.cond)
            self._loop_depth += 1
            self._analyze_stmt(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.ForStmt):
            self.push_scope()
            if stmt.init is not None:
                self._analyze_stmt(stmt.init)
            if stmt.cond is not None:
                self._require_scalar(stmt.cond)
            if stmt.step is not None:
                self._analyze_expr(stmt.step)
            self._loop_depth += 1
            self._analyze_stmt(stmt.body)
            self._loop_depth -= 1
            self.pop_scope()
        elif isinstance(stmt, ast.ReturnStmt):
            want = self._current_fn.return_type
            if stmt.value is None:
                if not want.is_void():
                    raise MiniCError("missing return value", line=stmt.line)
            else:
                if want.is_void():
                    raise MiniCError("void function returns a value",
                                     line=stmt.line)
                got = self._analyze_expr(stmt.value)
                if not assignable(want, got):
                    raise MiniCError("cannot return %s as %s" % (got, want),
                                     line=stmt.line)
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            if self._loop_depth == 0:
                raise MiniCError("break/continue outside a loop",
                                 line=stmt.line)
        else:
            raise MiniCError("unhandled statement %r" % stmt, line=stmt.line)

    def _require_scalar(self, expr):
        ctype = self._analyze_expr(expr).decay()
        if not ctype.is_scalar():
            raise MiniCError("condition must be scalar, got %s" % ctype,
                             line=expr.line)

    # -- expressions -------------------------------------------------------------

    def _analyze_expr(self, expr):
        ctype = self._expr_type(expr)
        expr.ctype = ctype
        return ctype

    def _expr_type(self, expr):
        if isinstance(expr, ast.NumberLit):
            return INT
        if isinstance(expr, ast.Ident):
            symbol = self.lookup(expr.name, expr.line)
            expr.symbol = symbol
            return symbol.ctype
        if isinstance(expr, ast.UnaryOp):
            return self._unary_type(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._binary_type(expr)
        if isinstance(expr, ast.Assign):
            return self._assign_type(expr)
        if isinstance(expr, ast.IncDec):
            return self._incdec_type(expr)
        if isinstance(expr, ast.Index):
            base = self._analyze_expr(expr.array).decay()
            index = self._analyze_expr(expr.index).decay()
            if not base.is_pointer():
                raise MiniCError("cannot index %s" % base, line=expr.line)
            if not index.is_int():
                raise MiniCError("array index must be int", line=expr.line)
            return base.pointee
        if isinstance(expr, ast.Member):
            return self._member_type(expr)
        if isinstance(expr, ast.Call):
            return self._call_type(expr)
        if isinstance(expr, ast.SizeOf):
            expr.value = self.resolve_type(expr.type_spec).size
            return INT
        raise MiniCError("unhandled expression %r" % expr, line=expr.line)

    def _unary_type(self, expr):
        operand = self._analyze_expr(expr.operand)
        op = expr.op
        if op in ("-", "!", "~"):
            if not operand.decay().is_scalar():
                raise MiniCError("unary %s needs a scalar" % op,
                                 line=expr.line)
            return INT
        if op == "*":
            decayed = operand.decay()
            if not decayed.is_pointer():
                raise MiniCError("cannot dereference %s" % operand,
                                 line=expr.line)
            return decayed.pointee
        if op == "&":
            if not self._is_lvalue(expr.operand):
                raise MiniCError("cannot take address of rvalue",
                                 line=expr.line)
            if operand.is_array():
                return PtrType(operand.elem)
            return PtrType(operand)
        raise MiniCError("unhandled unary %r" % op, line=expr.line)

    def _binary_type(self, expr):
        left = self._analyze_expr(expr.left).decay()
        right = self._analyze_expr(expr.right).decay()
        op = expr.op
        expr.ptr_scale = 0
        expr.ptr_diff_size = 0
        if op in ("&&", "||"):
            if not (left.is_scalar() and right.is_scalar()):
                raise MiniCError("%s needs scalars" % op, line=expr.line)
            return INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if not (left.is_scalar() and right.is_scalar()):
                raise MiniCError("%s needs scalars" % op, line=expr.line)
            return INT
        if op == "+":
            if left.is_pointer() and right.is_int():
                expr.ptr_scale = left.pointee.size
                return left
            if left.is_int() and right.is_pointer():
                expr.ptr_scale = -right.pointee.size  # negative: scale left
                return right
            if left.is_int() and right.is_int():
                return INT
            raise MiniCError("invalid operands to +", line=expr.line)
        if op == "-":
            if left.is_pointer() and right.is_int():
                expr.ptr_scale = left.pointee.size
                return left
            if left.is_pointer() and right.is_pointer():
                if left != right:
                    raise MiniCError("pointer difference of distinct types",
                                     line=expr.line)
                expr.ptr_diff_size = left.pointee.size
                return INT
            if left.is_int() and right.is_int():
                return INT
            raise MiniCError("invalid operands to -", line=expr.line)
        # Remaining: * / % << >> & | ^ — integers only.
        if not (left.is_int() and right.is_int()):
            raise MiniCError("%s needs int operands" % op, line=expr.line)
        return INT

    def _assign_type(self, expr):
        target = self._analyze_expr(expr.target)
        value = self._analyze_expr(expr.value).decay()
        if not self._is_lvalue(expr.target):
            raise MiniCError("assignment target is not an lvalue",
                             line=expr.line)
        if target.is_array() or target.is_struct():
            raise MiniCError("cannot assign aggregates", line=expr.line)
        expr.ptr_scale = 0
        if expr.op == "=":
            if not assignable(target, value):
                raise MiniCError("cannot assign %s to %s" % (value, target),
                                 line=expr.line)
            return target
        # Compound assignment.
        base_op = expr.op[:-1]
        if target.is_pointer():
            if base_op not in ("+", "-") or not value.is_int():
                raise MiniCError("invalid compound assignment on pointer",
                                 line=expr.line)
            expr.ptr_scale = target.pointee.size
            return target
        if not (target.is_int() and value.is_int()):
            raise MiniCError("compound assignment needs ints", line=expr.line)
        return target

    def _incdec_type(self, expr):
        target = self._analyze_expr(expr.target)
        if not self._is_lvalue(expr.target):
            raise MiniCError("++/-- target is not an lvalue", line=expr.line)
        if target.is_pointer():
            expr.step = target.pointee.size
            return target
        if target.is_int():
            expr.step = 1
            return target
        raise MiniCError("++/-- needs int or pointer", line=expr.line)

    def _member_type(self, expr):
        obj = self._analyze_expr(expr.obj)
        if expr.arrow:
            decayed = obj.decay()
            if not (decayed.is_pointer() and decayed.pointee.is_struct()):
                raise MiniCError("-> on non-struct-pointer %s" % obj,
                                 line=expr.line)
            struct = decayed.pointee
        else:
            if not obj.is_struct():
                raise MiniCError(". on non-struct %s" % obj, line=expr.line)
            struct = obj
        offset, member_type = struct.member(expr.name, line=expr.line)
        expr.offset = offset
        expr.member_type = member_type
        return member_type

    def _call_type(self, expr):
        fn = self.info.functions.get(expr.name)
        if fn is None:
            raise MiniCError("call to undefined function %r" % expr.name,
                             line=expr.line)
        if len(expr.args) != len(fn.param_types):
            raise MiniCError(
                "%s() takes %d argument(s), got %d"
                % (expr.name, len(fn.param_types), len(expr.args)),
                line=expr.line)
        for arg, want in zip(expr.args, fn.param_types):
            got = self._analyze_expr(arg).decay()
            if not assignable(want, got):
                raise MiniCError("argument type %s does not match %s"
                                 % (got, want), line=expr.line)
        expr.symbol = fn
        return fn.return_type

    def _is_lvalue(self, expr):
        if isinstance(expr, ast.Ident):
            return True
        if isinstance(expr, ast.UnaryOp) and expr.op == "*":
            return True
        if isinstance(expr, (ast.Index, ast.Member)):
            return True
        return False


def analyze(unit):
    """Run semantic analysis, returning a :class:`SemanticInfo`."""
    return Analyzer().analyze(unit)
