"""Abstract syntax tree node types for Mini-C.

Nodes are plain attribute holders; semantic analysis annotates expression
nodes with a ``ctype`` attribute (see :mod:`repro.minic.types`) and
resolves identifiers to symbol objects.
"""


class Node:
    """Base AST node; subclasses define ``_fields``."""

    _fields = ()

    def __init__(self, line, **kwargs):
        self.line = line
        for field in self._fields:
            setattr(self, field, kwargs.pop(field))
        if kwargs:
            raise TypeError("unexpected fields: %s" % sorted(kwargs))

    def __repr__(self):
        inner = ", ".join("%s=%r" % (f, getattr(self, f)) for f in self._fields)
        return "%s(%s)" % (type(self).__name__, inner)


# -- top level ----------------------------------------------------------------

class TranslationUnit(Node):
    _fields = ("structs", "globals", "functions")


class StructDef(Node):
    _fields = ("name", "members")  # members: list of (type_spec, name)


class GlobalVar(Node):
    _fields = ("type_spec", "name", "init")  # init: expr, list of exprs, or None


class FunctionDef(Node):
    _fields = ("return_type", "name", "params", "body")
    # params: list of (type_spec, name)


class TypeSpec(Node):
    """Unresolved type syntax: base ('int'|'void'|('struct', name)),
    pointer depth, and optional array length expression."""

    _fields = ("base", "ptr_depth", "array_len")


# -- statements -----------------------------------------------------------------

class Block(Node):
    _fields = ("statements",)


class DeclStmt(Node):
    _fields = ("type_spec", "name", "init")


class ExprStmt(Node):
    _fields = ("expr",)


class IfStmt(Node):
    _fields = ("cond", "then_body", "else_body")


class WhileStmt(Node):
    _fields = ("cond", "body")


class ForStmt(Node):
    _fields = ("init", "cond", "step", "body")


class ReturnStmt(Node):
    _fields = ("value",)


class BreakStmt(Node):
    _fields = ()


class ContinueStmt(Node):
    _fields = ()


# -- expressions -----------------------------------------------------------------

class NumberLit(Node):
    _fields = ("value",)


class Ident(Node):
    _fields = ("name",)


class UnaryOp(Node):
    _fields = ("op", "operand")  # op in - ! ~ * &


class BinaryOp(Node):
    _fields = ("op", "left", "right")


class Assign(Node):
    _fields = ("op", "target", "value")  # op: '=' or compound like '+='


class IncDec(Node):
    _fields = ("op", "target", "postfix")  # op: '++' or '--'


class Index(Node):
    _fields = ("array", "index")


class Member(Node):
    _fields = ("obj", "name", "arrow")  # arrow: True for ->


class Call(Node):
    _fields = ("name", "args")


class SizeOf(Node):
    _fields = ("type_spec",)
