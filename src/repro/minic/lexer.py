"""Lexer for Mini-C."""

import re

from repro.errors import MiniCError

KEYWORDS = frozenset([
    "int", "void", "struct", "if", "else", "while", "for", "return",
    "break", "continue", "sizeof",
])

# Token kinds.
KW = "kw"
IDENT = "ident"
NUMBER = "number"
OP = "op"
EOF = "eof"

# Longest operators first so the alternation is greedy-correct.
_OPERATORS = [
    "<<=", ">>=",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ".",
]

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<hex>0[xX][0-9a-fA-F]+)
  | (?P<number>[0-9]+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>%s)
""" % "|".join(re.escape(op) for op in _OPERATORS),
    re.VERBOSE | re.DOTALL)


class Token:
    __slots__ = ("kind", "value", "line")

    def __init__(self, kind, value, line):
        self.kind = kind
        self.value = value
        self.line = line

    def __repr__(self):
        return "Token(%s, %r, line=%d)" % (self.kind, self.value, self.line)


def tokenize(source):
    """Tokenize Mini-C source into a token list ending with an EOF token."""
    tokens = []
    pos = 0
    line = 1
    n = len(source)
    while pos < n:
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise MiniCError("unexpected character %r" % source[pos], line=line)
        text = match.group()
        if match.lastgroup in ("ws", "comment"):
            line += text.count("\n")
        elif match.lastgroup in ("hex", "number"):
            tokens.append(Token(NUMBER, int(text, 0), line))
        elif match.lastgroup == "ident":
            kind = KW if text in KEYWORDS else IDENT
            tokens.append(Token(kind, text, line))
        else:
            tokens.append(Token(OP, text, line))
        pos = match.end()
    tokens.append(Token(EOF, None, line))
    return tokens
