"""Mini-C type objects.

Everything is 4-byte based: ``int`` is a 32-bit signed word, pointers are
32-bit addresses, arrays and structs are contiguous word-multiples. The
uniform word size keeps codegen and the state-vector word predictors
(which interpret 32-bit quantities) aligned with each other.
"""

from repro.errors import MiniCError

WORD = 4


class CType:
    """Base class for Mini-C types."""

    size = 0

    def is_int(self):
        return isinstance(self, IntType)

    def is_pointer(self):
        return isinstance(self, PtrType)

    def is_array(self):
        return isinstance(self, ArrayType)

    def is_struct(self):
        return isinstance(self, StructType)

    def is_void(self):
        return isinstance(self, VoidType)

    def is_scalar(self):
        """Types that fit a register: int or pointer."""
        return self.is_int() or self.is_pointer()

    def decay(self):
        """Array-to-pointer decay; identity for other types."""
        if isinstance(self, ArrayType):
            return PtrType(self.elem)
        return self


class VoidType(CType):
    size = 0

    def __eq__(self, other):
        return isinstance(other, VoidType)

    def __hash__(self):
        return hash("void")

    def __str__(self):
        return "void"


class IntType(CType):
    size = WORD

    def __eq__(self, other):
        return isinstance(other, IntType)

    def __hash__(self):
        return hash("int")

    def __str__(self):
        return "int"


class PtrType(CType):
    size = WORD

    def __init__(self, pointee):
        self.pointee = pointee

    def __eq__(self, other):
        return isinstance(other, PtrType) and self.pointee == other.pointee

    def __hash__(self):
        return hash(("ptr", self.pointee))

    def __str__(self):
        return "%s*" % self.pointee


class ArrayType(CType):
    def __init__(self, elem, length):
        if length <= 0:
            raise MiniCError("array length must be positive, got %d" % length)
        self.elem = elem
        self.length = length
        self.size = elem.size * length

    def __eq__(self, other):
        return (isinstance(other, ArrayType) and self.elem == other.elem
                and self.length == other.length)

    def __hash__(self):
        return hash(("array", self.elem, self.length))

    def __str__(self):
        return "%s[%d]" % (self.elem, self.length)


class StructType(CType):
    def __init__(self, name):
        self.name = name
        self.members = {}  # name -> (offset, CType)
        self.member_order = []
        self.size = 0
        self.complete = False

    def add_member(self, name, ctype):
        if self.complete:
            raise MiniCError("struct %s is already complete" % self.name)
        if name in self.members:
            raise MiniCError("duplicate member %r in struct %s"
                             % (name, self.name))
        if ctype.size % WORD:
            raise MiniCError("member %r has non-word size" % name)
        self.members[name] = (self.size, ctype)
        self.member_order.append(name)
        self.size += ctype.size

    def finish(self):
        if not self.member_order:
            raise MiniCError("struct %s has no members" % self.name)
        self.complete = True

    def member(self, name, line=None):
        try:
            return self.members[name]
        except KeyError:
            raise MiniCError("struct %s has no member %r" % (self.name, name),
                             line=line)

    def __eq__(self, other):
        return isinstance(other, StructType) and other.name == self.name

    def __hash__(self):
        return hash(("struct", self.name))

    def __str__(self):
        return "struct %s" % self.name


#: Shared singletons for the fixed types.
INT = IntType()
VOID = VoidType()


def assignable(target, value):
    """Can a value of type ``value`` be stored into ``target``?

    Ints to ints, identical pointers, and int-to-pointer (for NULL-style
    literals; Mini-C does not distinguish 0 constants from ints).
    """
    target = target.decay()
    value = value.decay()
    if target.is_int() and value.is_int():
        return True
    if target.is_pointer() and value.is_pointer():
        return target == value
    if target.is_pointer() and value.is_int():
        return True  # numeric addresses / NULL
    if target.is_int() and value.is_pointer():
        return True  # pointer-to-int for hashing tricks
    return False
