"""Mini-C: a small C-subset compiler targeting SVM32.

The paper's benchmarks are C programs compiled with GCC to freestanding
x86 binaries. This package plays GCC's role: it compiles a C subset —
ints, pointers, fixed-size arrays, structs, functions, and the usual
control flow — down to SVM32 assembly, which the assembler turns into a
runnable :class:`repro.loader.image.Program`.

Supported language (see ``tests/minic`` for executable examples):

* types: ``int``, pointers (including pointer-to-struct), fixed-size
  arrays of int/pointer/struct, ``struct`` definitions, ``void``
  functions
* expressions: full C operator set over ints/pointers (arithmetic,
  bitwise, shifts, comparisons, short-circuit ``&&``/``||``, assignment
  and compound assignment, ``++``/``--``, ``*``/``&``, indexing,
  ``.``/``->``, calls, ``sizeof``)
* statements: blocks, ``if``/``else``, ``while``, ``for``, ``break``,
  ``continue``, ``return``, declarations with initializers

Not supported (not needed by the benchmarks): floating point, ``char``
strings, typedefs, function pointers, varargs, dynamic allocation
(benchmarks use static pools, as freestanding kernels do).
"""

from repro.minic.compiler import compile_source, compile_to_assembly

__all__ = ["compile_source", "compile_to_assembly"]
