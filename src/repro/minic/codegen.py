"""SVM32 code generation for analyzed Mini-C ASTs.

A deliberately simple one-pass stack-machine scheme: every expression
evaluates into ``eax``, sub-expression results are spilled with
``push``/``pop``, ``ecx``/``edx`` are scratch. Locals live at fixed
EBP-relative slots; the calling convention pushes arguments right to left
and the caller pops them (cdecl). Simplicity over cleverness: the paper's
predictors care about *regular* code, not fast code, and regular is what
a naive generator produces.
"""

from repro.errors import MiniCError
from repro.minic import ast

_CMP_SIGNED = {"==": "setz", "!=": "setnz", "<": "setl", "<=": "setle",
               ">": "setg", ">=": "setge"}
_CMP_UNSIGNED = {"==": "setz", "!=": "setnz", "<": "setb", ">": "seta"}


class CodeGenerator:
    def __init__(self, info):
        self.info = info
        self.lines = []
        self._label_counter = 0
        self._loop_stack = []  # (continue_label, break_label)
        self._fn_end_label = None

    # -- helpers --------------------------------------------------------------

    def emit(self, text):
        self.lines.append("    %s" % text)

    def emit_label(self, label):
        self.lines.append("%s:" % label)

    def new_label(self, hint="L"):
        self._label_counter += 1
        return "%s%d" % (hint, self._label_counter)

    def _local_ref(self, symbol):
        offset = symbol.ebp_offset
        if offset >= 0:
            return "[ebp+%d]" % offset
        return "[ebp-%d]" % -offset

    # -- program --------------------------------------------------------------

    def generate(self, unit):
        self.lines.append(".entry start")
        self.emit_label("start")
        self.emit("call fn_main")
        self.emit("hlt")
        for fn in unit.functions:
            self.gen_function(fn)
        self.lines.append(".data")
        for symbol in self.info.globals.values():
            self.emit_label(symbol.label)
            if symbol.init_words is not None:
                for word in symbol.init_words:
                    self.emit(".word %d" % word)
                remaining = symbol.ctype.size - 4 * len(symbol.init_words)
                if remaining:
                    self.emit(".space %d" % remaining)
            else:
                self.emit(".space %d" % symbol.ctype.size)
        return "\n".join(self.lines) + "\n"

    def gen_function(self, fn):
        symbol = self.info.functions[fn.name]
        self._fn_end_label = self.new_label("Lret")
        self.emit_label(symbol.label)
        self.emit("push ebp")
        self.emit("mov ebp, esp")
        frame = self.info.frame_sizes[fn.name]
        if frame:
            self.emit("sub esp, %d" % frame)
        self.gen_stmt(fn.body)
        self.emit_label(self._fn_end_label)
        self.emit("mov esp, ebp")
        self.emit("pop ebp")
        self.emit("ret")

    # -- statements -------------------------------------------------------------

    def gen_stmt(self, stmt):
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self.gen_stmt(inner)
        elif isinstance(stmt, ast.DeclStmt):
            if stmt.init is not None:
                self.rvalue(stmt.init)
                self.emit("store %s, eax" % self._local_ref(stmt.symbol))
        elif isinstance(stmt, ast.ExprStmt):
            self.rvalue(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self.gen_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self.gen_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self.gen_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self.rvalue(stmt.value)
            self.emit("jmp %s" % self._fn_end_label)
        elif isinstance(stmt, ast.BreakStmt):
            self.emit("jmp %s" % self._loop_stack[-1][1])
        elif isinstance(stmt, ast.ContinueStmt):
            self.emit("jmp %s" % self._loop_stack[-1][0])
        else:
            raise MiniCError("codegen: unhandled statement %r" % stmt,
                             line=stmt.line)

    def _branch_if_false(self, cond, label):
        self.rvalue(cond)
        self.emit("cmp eax, 0")
        self.emit("jz %s" % label)

    def gen_if(self, stmt):
        else_label = self.new_label("Lelse")
        end_label = self.new_label("Lend")
        self._branch_if_false(stmt.cond, else_label)
        self.gen_stmt(stmt.then_body)
        if stmt.else_body is not None:
            self.emit("jmp %s" % end_label)
            self.emit_label(else_label)
            self.gen_stmt(stmt.else_body)
            self.emit_label(end_label)
        else:
            self.emit_label(else_label)

    def gen_while(self, stmt):
        cond_label = self.new_label("Lwhile")
        end_label = self.new_label("Lend")
        self.emit_label(cond_label)
        self._branch_if_false(stmt.cond, end_label)
        self._loop_stack.append((cond_label, end_label))
        self.gen_stmt(stmt.body)
        self._loop_stack.pop()
        self.emit("jmp %s" % cond_label)
        self.emit_label(end_label)

    def gen_for(self, stmt):
        cond_label = self.new_label("Lfor")
        step_label = self.new_label("Lstep")
        end_label = self.new_label("Lend")
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        self.emit_label(cond_label)
        if stmt.cond is not None:
            self._branch_if_false(stmt.cond, end_label)
        self._loop_stack.append((step_label, end_label))
        self.gen_stmt(stmt.body)
        self._loop_stack.pop()
        self.emit_label(step_label)
        if stmt.step is not None:
            self.rvalue(stmt.step)
        self.emit("jmp %s" % cond_label)
        self.emit_label(end_label)

    # -- expressions: rvalues ------------------------------------------------------

    def rvalue(self, expr):
        """Emit code leaving the expression's value in eax."""
        if isinstance(expr, ast.NumberLit):
            self.emit("mov eax, %d" % expr.value)
        elif isinstance(expr, ast.Ident):
            self._ident_rvalue(expr)
        elif isinstance(expr, ast.UnaryOp):
            self._unary_rvalue(expr)
        elif isinstance(expr, ast.BinaryOp):
            self._binary_rvalue(expr)
        elif isinstance(expr, ast.Assign):
            self._assign_rvalue(expr)
        elif isinstance(expr, ast.IncDec):
            self._incdec_rvalue(expr)
        elif isinstance(expr, (ast.Index, ast.Member)):
            self.lvalue(expr)
            self._load_scalar(expr.ctype)
        elif isinstance(expr, ast.Call):
            self._call_rvalue(expr)
        elif isinstance(expr, ast.SizeOf):
            self.emit("mov eax, %d" % expr.value)
        else:
            raise MiniCError("codegen: unhandled expression %r" % expr,
                             line=expr.line)

    def _load_scalar(self, ctype):
        """After computing an address in eax, load the value if scalar.

        Aggregates (arrays, structs) stay as addresses — that's array
        decay and struct-by-reference in one rule.
        """
        if ctype.is_scalar():
            self.emit("load eax, [eax]")
        # arrays/structs: address already in eax

    def _ident_rvalue(self, expr):
        symbol = expr.symbol
        if symbol.ctype.is_array() or symbol.ctype.is_struct():
            self.lvalue(expr)
            return
        if symbol.is_global:
            self.emit("load eax, [%s]" % symbol.label)
        else:
            self.emit("load eax, %s" % self._local_ref(symbol))

    def _unary_rvalue(self, expr):
        op = expr.op
        if op == "&":
            self.lvalue(expr.operand)
            return
        if op == "*":
            self.rvalue(expr.operand)  # the pointer value == target address
            self._load_scalar(expr.ctype)
            return
        self.rvalue(expr.operand)
        if op == "-":
            self.emit("neg eax")
        elif op == "~":
            self.emit("not eax")
        elif op == "!":
            self.emit("cmp eax, 0")
            self.emit("setz eax")
        else:
            raise MiniCError("codegen: unhandled unary %r" % op,
                             line=expr.line)

    def _binary_rvalue(self, expr):
        op = expr.op
        if op in ("&&", "||"):
            self._shortcircuit_rvalue(expr)
            return
        # Evaluate left, spill, evaluate right into ecx, restore left.
        self.rvalue(expr.left)
        self.emit("push eax")
        self.rvalue(expr.right)
        self.emit("mov ecx, eax")
        self.emit("pop eax")

        if op in _CMP_SIGNED:
            self._compare_rvalue(expr, op)
            return

        scale = getattr(expr, "ptr_scale", 0)
        if op == "+":
            if scale > 0:
                self.emit("imul ecx, %d" % scale)
            elif scale < 0:
                self.emit("imul eax, %d" % -scale)
            self.emit("add eax, ecx")
        elif op == "-":
            if scale > 0:
                self.emit("imul ecx, %d" % scale)
            self.emit("sub eax, ecx")
            diff = getattr(expr, "ptr_diff_size", 0)
            if diff:
                self.emit("mov ecx, %d" % diff)
                self.emit("idiv ecx")
        elif op == "*":
            self.emit("imul eax, ecx")
        elif op == "/":
            self.emit("idiv ecx")
        elif op == "%":
            self.emit("idiv ecx")
            self.emit("mov eax, edx")
        elif op == "&":
            self.emit("and eax, ecx")
        elif op == "|":
            self.emit("or eax, ecx")
        elif op == "^":
            self.emit("xor eax, ecx")
        elif op == "<<":
            self.emit("shl eax, ecx")
        elif op == ">>":
            self.emit("sar eax, ecx")  # C-style arithmetic shift on ints
        else:
            raise MiniCError("codegen: unhandled binary %r" % op,
                             line=expr.line)

    def _compare_rvalue(self, expr, op):
        self.emit("cmp eax, ecx")
        unsigned = (expr.left.ctype.decay().is_pointer()
                    or expr.right.ctype.decay().is_pointer())
        if unsigned:
            if op in _CMP_UNSIGNED:
                self.emit("%s eax" % _CMP_UNSIGNED[op])
            elif op == "<=":
                self.emit("seta eax")
                self.emit("xor eax, 1")
            else:  # >=
                self.emit("setb eax")
                self.emit("xor eax, 1")
        else:
            self.emit("%s eax" % _CMP_SIGNED[op])

    def _shortcircuit_rvalue(self, expr):
        end_label = self.new_label("Lsc")
        if expr.op == "&&":
            fail_label = self.new_label("Lfalse")
            self.rvalue(expr.left)
            self.emit("cmp eax, 0")
            self.emit("jz %s" % fail_label)
            self.rvalue(expr.right)
            self.emit("cmp eax, 0")
            self.emit("jz %s" % fail_label)
            self.emit("mov eax, 1")
            self.emit("jmp %s" % end_label)
            self.emit_label(fail_label)
            self.emit("mov eax, 0")
            self.emit_label(end_label)
        else:
            ok_label = self.new_label("Ltrue")
            self.rvalue(expr.left)
            self.emit("cmp eax, 0")
            self.emit("jnz %s" % ok_label)
            self.rvalue(expr.right)
            self.emit("cmp eax, 0")
            self.emit("jnz %s" % ok_label)
            self.emit("mov eax, 0")
            self.emit("jmp %s" % end_label)
            self.emit_label(ok_label)
            self.emit("mov eax, 1")
            self.emit_label(end_label)

    def _assign_rvalue(self, expr):
        self.lvalue(expr.target)
        self.emit("push eax")
        self.rvalue(expr.value)
        self.emit("pop ecx")
        if expr.op == "=":
            self.emit("store [ecx], eax")
            return
        base_op = expr.op[:-1]
        scale = getattr(expr, "ptr_scale", 0)
        self.emit("mov edx, eax")  # rhs
        if scale:
            self.emit("imul edx, %d" % scale)
        self.emit("load eax, [ecx]")  # current value
        if base_op == "+":
            self.emit("add eax, edx")
        elif base_op == "-":
            self.emit("sub eax, edx")
        elif base_op == "*":
            self.emit("imul eax, edx")
        elif base_op == "/":
            self.emit("idiv edx")
        elif base_op == "%":
            self.emit("idiv edx")
            self.emit("mov eax, edx")
        elif base_op == "&":
            self.emit("and eax, edx")
        elif base_op == "|":
            self.emit("or eax, edx")
        elif base_op == "^":
            self.emit("xor eax, edx")
        elif base_op == "<<":
            self.emit("shl eax, edx")
        elif base_op == ">>":
            self.emit("sar eax, edx")
        else:
            raise MiniCError("codegen: unhandled compound %r" % expr.op,
                             line=expr.line)
        self.emit("store [ecx], eax")

    def _incdec_rvalue(self, expr):
        self.lvalue(expr.target)
        self.emit("mov ecx, eax")
        self.emit("load eax, [ecx]")  # old value
        self.emit("mov edx, eax")
        mnemonic = "add" if expr.op == "++" else "sub"
        self.emit("%s edx, %d" % (mnemonic, expr.step))
        self.emit("store [ecx], edx")
        if not expr.postfix:
            self.emit("mov eax, edx")

    def _call_rvalue(self, expr):
        for arg in reversed(expr.args):
            self.rvalue(arg)
            self.emit("push eax")
        self.emit("call %s" % expr.symbol.label)
        if expr.args:
            self.emit("add esp, %d" % (4 * len(expr.args)))

    # -- expressions: lvalues -----------------------------------------------------

    def lvalue(self, expr):
        """Emit code leaving the expression's address in eax."""
        if isinstance(expr, ast.Ident):
            symbol = expr.symbol
            if symbol.is_global:
                self.emit("mov eax, %s" % symbol.label)
            else:
                self.emit("lea eax, %s" % self._local_ref(symbol))
        elif isinstance(expr, ast.UnaryOp) and expr.op == "*":
            self.rvalue(expr.operand)
        elif isinstance(expr, ast.Index):
            self.rvalue(expr.array)  # decayed base address
            self.emit("push eax")
            self.rvalue(expr.index)
            self.emit("mov ecx, eax")
            self.emit("pop eax")
            self.emit("imul ecx, %d" % expr.ctype.size)
            self.emit("add eax, ecx")
        elif isinstance(expr, ast.Member):
            if expr.arrow:
                self.rvalue(expr.obj)
            else:
                self.lvalue(expr.obj)
            if expr.offset:
                self.emit("add eax, %d" % expr.offset)
        else:
            raise MiniCError("codegen: not an lvalue: %r" % expr,
                             line=expr.line)


def generate(unit, info):
    """Generate SVM32 assembly text for an analyzed translation unit."""
    return CodeGenerator(info).generate(unit)
