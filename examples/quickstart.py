"""Quickstart: compile a sequential C-subset program and scale it with ASC.

Run:  python examples/quickstart.py

This walks the full pipeline on a small program: Mini-C -> SVM32 binary
-> sequential reference run -> recognizer -> speculative parallel
execution on a simulated 32-core server, printing the scaling LASC
extracts without touching the source program.
"""

from repro import (
    ExperimentContext,
    compile_source,
    run_sequential,
    scaling_sweep,
)
from repro.bench.workload import Workload
from repro.core.config import EngineConfig

SOURCE = """
// A sequential kernel: score 600 records against a rolling threshold.
int scores[600];
int best;
int best_index;

int score(int seed) {
    int v = seed;
    int j;
    for (j = 0; j < 40; j++) {
        v = v * 1103515245 + 12345;
        v = v ^ (v >> 7);
    }
    return v & 0xFFFF;
}

int main() {
    int i;
    best = -1;
    for (i = 0; i < 600; i++) {
        scores[i] = score(i * 17 + 3);
        if (scores[i] > best) {
            best = scores[i];
            best_index = i;
        }
    }
    return best;
}
"""


def main():
    program = compile_source(SOURCE, name="quickstart")
    print("compiled: %s" % (program,))

    sequential = run_sequential(program)
    print("sequential: %d instructions (%.3f simulated seconds)"
          % (sequential.instructions, sequential.seconds))

    workload = Workload("quickstart", program,
                        config=EngineConfig(recognizer_window=40_000,
                                            min_superstep_instructions=300))
    context = ExperimentContext(workload)
    print("recognized IP 0x%x, superstep ~%.0f instructions"
          % (context.recognized.ip,
             context.recognized.superstep_instructions))

    print("\n%6s  %8s  %6s  %6s" % ("cores", "scaling", "hits", "misses"))
    for point in scaling_sweep(context, [1, 2, 4, 8, 16, 32],
                               collect_prediction_stats=False):
        stats = point.result.stats
        print("%6d  %8.2f  %6d  %6d"
              % (point.n_cores, point.scaling, stats.hits, stats.misses))
    print("\nThe program was never annotated, recompiled, or modified: "
          "ASC found the loop,\nlearned its state evolution, and "
          "speculated it in parallel.")


if __name__ == "__main__":
    main()
