"""The paper's headline experiment: scaling the Ising kernel (Figure 4).

Run:  python examples/ising_scaling.py [nodes]

The Ising kernel walks a linked list of spin configurations looking for
the minimum-energy element — pointer-chasing code that parallelizing
compilers give up on. LASC parallelizes it by *learning* the address
sequence of the list nodes, speculating future iterations on spare
cores, and fast-forwarding through the trajectory cache.
"""

import sys

from repro import ExperimentContext, build_ising, scaling_sweep
from repro.analysis import format_series
from repro.analysis.scaling import ideal_series
from repro.bench.handparallel import hand_parallel_scaling
from repro.analysis.scaling import ScalingPoint


def main(nodes=256):
    workload = build_ising(nodes=nodes, spins=8)
    print("building %s..." % workload.description)
    context = ExperimentContext(workload)
    recognized = context.recognized
    print("recognizer chose IP 0x%x (superstep ~%.0f instructions, "
          "converged after %d instructions)"
          % (recognized.ip, recognized.superstep_instructions,
             recognized.search_instructions))

    server_cores = [1, 2, 4, 8, 16, 32]
    total = context.record.total_instructions
    series = {
        "ideal": ideal_series(server_cores),
        "hand-parallel": [
            ScalingPoint(n, hand_parallel_scaling(n, total, nodes))
            for n in server_cores],
        "lasc+oracle": scaling_sweep(context, server_cores, oracle=True),
        "lasc": scaling_sweep(context, server_cores,
                              collect_prediction_stats=False),
    }
    print()
    print(format_series(series, title="Ising on the simulated 32-core "
                                      "server (paper Figure 4, left)"))

    bgp_cores = [8, 32, 128, 512, 1024]
    bgp = {
        "ideal": ideal_series(bgp_cores),
        "lasc": scaling_sweep(context, bgp_cores, platform="bluegene_p",
                              collect_prediction_stats=False),
    }
    print()
    print(format_series(bgp, title="Ising on the simulated Blue Gene/P "
                                   "(paper Figure 4, right)"))

    final = bgp["lasc"][-1].result
    print("\nat %d cores: %d supersteps fast-forwarded, %d executed "
          "(%d misses: %d late, %d mispredicted)"
          % (final.n_cores, final.stats.hits,
             final.stats.misses, final.stats.misses,
             final.stats.misses_late, final.stats.misses_nomatch))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 256)
