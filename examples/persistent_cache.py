"""Cache reuse across invocations and compiler hints (§6 extensions).

Run:  python examples/persistent_cache.py

Two of the paper's future-work directions, working together:

* the Mini-C compiler hands the recognizer its loop and function
  addresses, so recognition searches a handful of candidates instead of
  every instruction address;
* the trajectory cache earned by one invocation is saved to disk and
  preloaded by the next, which starts fast-forwarding immediately —
  computation amortized across program runs.
"""

import os
import tempfile

from repro import build_collatz
from repro.cluster import CostModel, laptop1
from repro.core.cache_io import load_cache, save_cache
from repro.core.engine import MemoizingEngine
from repro.core.recognizer import Recognizer


def main():
    workload = build_collatz(count=700, memoize=True)
    config = workload.config.replace(use_compiler_hints=True)
    print("hints from the compiler: %r" % (workload.program.hints,))

    recognized = Recognizer(config).find_for_memoization(workload.program)
    print("recognizer (hint-assisted) chose IP 0x%x" % recognized.ip)
    factor = max(recognized.superstep_instructions / 2.3e6 / 5.22, 1e-7)
    platform = laptop1(CostModel().scaled(factor))

    print("\nfirst invocation (cold cache)...")
    cold = MemoizingEngine(workload.program, platform, config=config,
                           recognized=recognized).run()
    print("  scaling %.3fx, %d hits, cache holds %d entries (%d bytes)"
          % (cold.scaling, cold.stats.hits, len(cold.cache),
             cold.cache.total_bytes))

    path = os.path.join(tempfile.gettempdir(), "collatz.ascc")
    save_cache(cold.cache, path)
    print("  cache saved to %s" % path)

    print("\nsecond invocation (cache preloaded from disk)...")
    warm = MemoizingEngine(workload.program, platform, config=config,
                           recognized=recognized,
                           initial_cache=load_cache(path)).run()
    print("  scaling %.3fx, %d hits" % (warm.scaling, warm.stats.hits))

    print("\nspeedup carried across invocations: %.3fx -> %.3fx"
          % (cold.scaling, warm.scaling))
    print("Every fast-forward remains byte-exact: a stale entry whose "
          "dependencies no longer\nmatch simply never fires.")


if __name__ == "__main__":
    main()
