"""A tour of the substrate: Mini-C -> assembly -> state-space execution.

Run:  python examples/toolchain_tour.py

Shows the layers beneath ASC: the Mini-C compiler, the SVM32 assembly it
emits, the flat state vector the machine lives in, and the dependency
vector the transition function accumulates — the raw material of the
trajectory cache.
"""

from repro.asm import disassemble_program
from repro.machine import DEP_READ, DEP_WAR, DEP_WRITTEN, DepVector
from repro.minic import compile_source, compile_to_assembly

SOURCE = """
int history[16];
int checksum;

int step(int value) {
    return (value * 31 + 7) % 1000;
}

int main() {
    int i;
    int value = 42;
    for (i = 0; i < 16; i++) {
        value = step(value);
        history[i] = value;
        checksum += value;
    }
    return checksum;
}
"""


def main():
    print("=== Mini-C source ===")
    print(SOURCE)

    assembly = compile_to_assembly(SOURCE)
    print("=== generated SVM32 assembly (first 24 lines) ===")
    print("\n".join(assembly.splitlines()[:24]))
    print("    ... (%d lines total)" % len(assembly.splitlines()))

    program = compile_source(SOURCE, name="tour")
    print("\n=== program image ===")
    print(program)
    print("state vector: %d bytes (%d bits of state space)"
          % (program.layout.size, program.layout.n_bits))

    print("\n=== disassembly (first 10 instructions) ===")
    print("\n".join(disassemble_program(program).splitlines()[:10]))

    machine = program.make_machine()
    dep = DepVector(program.layout.size)
    result = machine.run(max_instructions=100_000, dep=dep)
    print("\n=== execution ===")
    print("ran %d instructions to halt" % result.instructions)
    print("checksum = %d" % machine.state.read_i32(
        program.symbol("g_checksum")))

    counts = dep.counts()
    print("\n=== dependency vector (the paper's g) ===")
    print("read-only bytes:          %6d" % counts[DEP_READ])
    print("written bytes:            %6d" % counts[DEP_WRITTEN])
    print("written-after-read bytes: %6d" % counts[DEP_WAR])
    print("untouched bytes:          %6d of %d"
          % (counts[0], program.layout.size))
    print("\nOnly the read / written-after-read bytes are true inputs of "
          "this computation —\nthe sparse start-state a trajectory-cache "
          "entry is keyed on.")


if __name__ == "__main__":
    main()
