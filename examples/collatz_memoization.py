"""Single-core speedup from the program's own past (Figure 6, right).

Run:  python examples/collatz_memoization.py [count]

On one core there is nothing to speculate on — yet LASC still speeds up
the Collatz kernel by caching supersteps of its *own past* execution.
Different integers' 3x+1 sequences share convergence suffixes, so inner-
loop trajectory segments recur, and a recurring segment's cache entry
fast-forwards straight through computation the program has effectively
done before: generalized memoization, discovered automatically.
"""

import sys

from repro import ExperimentContext, build_collatz, memoization_curve


def render_curve(timeline, width=52):
    lo = min(p.scaling for p in timeline)
    hi = max(p.scaling for p in timeline)
    span = max(hi - lo, 1e-9)
    lines = []
    for point in timeline:
        bar = int((point.scaling - lo) / span * width)
        lines.append("%10d  %5.3f  |%s" % (point.instructions,
                                           point.scaling, "#" * bar))
    return "\n".join(lines)


def main(count=600):
    workload = build_collatz(count=count, memoize=True)
    print("testing the Collatz conjecture for 1..%d on one core" % count)
    context = ExperimentContext(workload, memoization=True)
    recognized = context.recognized
    print("memoization recognizer chose inner-loop IP 0x%x "
          "(superstep ~%.0f instructions)"
          % (recognized.ip, recognized.superstep_instructions))

    result = memoization_curve(context)
    print("\nscaling vs. instructions executed "
          "(paper Figure 6, right):\n")
    print(render_curve(result.timeline[::max(1,
                                             len(result.timeline) // 24)]))
    print("\nfinal scaling %.3fx — %d cache hits fast-forwarded %d of %d "
          "instructions" % (result.scaling, result.stats.hits,
                            result.stats.instructions_fast_forwarded,
                            result.total_instructions))
    print("the curve starts below 1.0 (dependency-tracking overhead) and "
          "climbs as the\ncache of past trajectory segments pays off, "
          "then flattens as larger integers'\nsequences share "
          "proportionally less of their suffixes — the paper's shape.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 600)
