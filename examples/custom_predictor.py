"""Extending LASC with a custom predictor (§4.4.2: "LASC is extensible").

Run:  python examples/custom_predictor.py

Implements a *modular counter* predictor — it hypothesizes that a word
follows ``x' = (x + stride) mod m`` — plugs it into the ensemble next to
the stock four algorithms, and shows the Randomized Weighted Majority
machinery automatically routing the bits it is best at to it. This is
the paper's extensibility story: any model that can emit per-bit
predictions can join the ensemble, and regret minimization sorts out
who to trust, bit by bit.
"""

import numpy as np

from repro.core.excitation import ObservationView
from repro.core.predictors import (
    LinearRegressionPredictor,
    MeanPredictor,
    PredictorEnsemble,
    WeathermanPredictor,
)
from repro.core.predictors.base import Predictor


class ModularCounterPredictor(Predictor):
    """Learns x' = (x + stride) mod m per word from observed pairs."""

    name = "modcounter"

    def __init__(self, modulus=10):
        super().__init__()
        self.modulus = modulus
        self._strides = {}  # word index -> consensus stride

    def update(self, prev_view, next_view):
        self.ensure_capacity(next_view.n_bits)
        prev = prev_view.word_values.tolist()
        nxt = next_view.word_values.tolist()
        for i, (x, y) in enumerate(zip(prev, nxt)):
            stride = (y - x) % self.modulus
            seen = self._strides.setdefault(i, {})
            seen[stride] = seen.get(stride, 0) + 1

    def _predict_word(self, i, x):
        seen = self._strides.get(i)
        if not seen:
            return x, 0.5
        stride, count = max(seen.items(), key=lambda kv: kv[1])
        total = sum(seen.values())
        value = (x + stride) % self.modulus
        return value, max(0.5, min(0.99, count / total))

    def predict(self, view):
        self.ensure_capacity(view.n_bits)
        words = np.empty(view.n_bits // 32, dtype=np.uint32)
        confidence = np.empty(view.n_bits)
        for i, x in enumerate(view.word_values.tolist()):
            value, conf = self._predict_word(i, int(x))
            words[i] = value
            confidence[32 * i:32 * i + 32] = conf
        bits = np.unpackbits(words.view(np.uint8), bitorder="little")
        return bits, confidence


def view_of(value):
    words = np.array([value], dtype=np.uint32)
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return ObservationView(words, bits, version=1, index=-1)


def main():
    # A mod-10 counter: 0,3,6,9,2,5,8,1,... — hostile to affine fits,
    # trivial for the custom predictor.
    ensemble = PredictorEnsemble([
        MeanPredictor(),
        WeathermanPredictor(),
        LinearRegressionPredictor(),
        ModularCounterPredictor(modulus=10),
    ], beta=0.3)

    sequence = [(3 * i) % 10 for i in range(40)]
    correct = []
    for value in sequence:
        outcome = ensemble.observe(view_of(value))
        if outcome.scored:
            correct.append(
                not (outcome.ensemble_bits != outcome.actual_bits).any())

    print("prediction accuracy over a (x+3) mod 10 counter:")
    print("  first 10 observations: %d/10 correct"
          % sum(correct[:10]))
    print("  last 10 observations:  %d/10 correct"
          % sum(correct[-10:]))

    weights = ensemble.weight_matrix()
    print("\nfinal normalized RWMA weight (mean over bits):")
    for name, row in zip(ensemble.expert_names, weights):
        print("  %-24s %.3f" % (name, row.mean()))
    print("\nThe regret minimizer discovered — per bit, online, with no "
          "hints — that the\ncustom predictor is the expert to trust "
          "for this pattern.")


if __name__ == "__main__":
    main()
