"""Speculation-as-a-service: warm daemon vs cold daemon vs one-shot.

The daemon's whole thesis is amortization — worker pools, recognizer
output, and the trajectory cache all survive between submissions, so a
*re*-submission should pay none of the startup taxes a one-shot
``repro run`` pays every time. Three legs per workload, all real
wall-clock through the real unix-socket protocol:

* **oneshot** — a fresh ``RealParallelEngine`` with a fresh pool and an
  empty cache, the ``repro run --backend real`` shape (the baseline a
  daemon must beat on re-submission);
* **cold submit** — first submission of the image to a fresh daemon:
  pays pool spawn + recognition + an empty namespace, plus the protocol
  round trips;
* **warm submit** — the same image submitted again: warm pool, cached
  recognition, and a populated namespace shard. Time-to-first-splice
  (``first_splice_seconds``, measured inside the engine) is the
  headline: how long until the shared cache first pays off.

Every leg asserts byte-identical finals against sequential. Metrics
land in ``results/BENCH_serve.json``; the acceptance bar is
``collatz_warm_first_splice_seconds`` < ``collatz_cold_first_splice_seconds``
and warm wall beating cold wall.
"""

import base64
import os
import subprocess
import sys
import time

from conftest import PROFILE, publish, publish_metrics

from repro.bench import build_collatz, build_ising
from repro.core.config import EngineConfig
from repro.runtime import RealParallelEngine, RuntimeConfig
from repro.serve import ServeClient, ServeConfig, SpeculationDaemon

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")

_SIZES = {
    "full": dict(collatz_count=4000, ising_nodes=128, ising_spins=6,
                 workers=2, resubmits=3),
    "quick": dict(collatz_count=1500, ising_nodes=64, ising_spins=5,
                  workers=2, resubmits=2),
}
SIZES = _SIZES["quick" if PROFILE == "quick" else "full"]

#: Filled by the workload tests, consumed by test_publish_serve_json
#: (tests in this module run in definition order under pytest).
_RECORDED = {}


def _engine_overrides(config):
    defaults = EngineConfig().__dict__
    return {key: (list(value) if isinstance(value, tuple) else value)
            for key, value in config.__dict__.items()
            if defaults.get(key) != value}


def _sequential(program):
    machine = program.make_machine()
    start = time.perf_counter()
    machine.run(max_instructions=500_000_000)
    wall = time.perf_counter() - start
    assert machine.halted
    return wall, bytes(machine.state.buf)


def _oneshot(workload, n_workers):
    """The no-daemon baseline: everything cold, including pool spawn."""
    start = time.perf_counter()
    engine = RealParallelEngine(
        workload.program, config=workload.config,
        runtime_config=RuntimeConfig(n_workers=n_workers,
                                     inflight_wait_bias=1e9))
    result = engine.run()
    wall = time.perf_counter() - start
    assert result.halted
    return wall, result


def _submit(client, workload):
    """One submission through the real protocol; returns (wall, result).

    Wall is measured around the whole client interaction — submit,
    poll, fetch — because that is what a daemon user experiences.
    """
    start = time.perf_counter()
    result = client.run(workload.program,
                        engine=_engine_overrides(workload.config),
                        inflight_wait_bias=1e9)
    wall = time.perf_counter() - start
    assert result["halted"]
    return wall, result


def _bench_workload(name, workload, tmp_path):
    seq_wall, expected = _sequential(workload.program)

    oneshot_wall, oneshot_result = _oneshot(workload, SIZES["workers"])
    assert oneshot_result.final_state == expected

    config = ServeConfig(socket_path=str(tmp_path / (name + ".sock")),
                         cache_dir=str(tmp_path / (name + "-cache")),
                         worker_budget=SIZES["workers"],
                         workers_per_job=SIZES["workers"])
    with SpeculationDaemon(config).start() as daemon:
        with ServeClient(config.socket_path, client="bench") as client:
            cold_wall, cold = _submit(client, workload)
            assert base64.b64decode(cold["final_state"]) == expected
            warm_walls, warm_results = [], []
            for __ in range(SIZES["resubmits"]):
                wall, warm = _submit(client, workload)
                assert base64.b64decode(warm["final_state"]) == expected
                warm_walls.append(wall)
                warm_results.append(warm)
        daemon.close()

    best_warm = min(warm_walls)
    warm = warm_results[warm_walls.index(best_warm)]
    record = {
        "sequential_wall_seconds": seq_wall,
        "oneshot_wall_seconds": oneshot_wall,
        "oneshot_first_splice_seconds":
            oneshot_result.stats.first_splice_seconds,
        "cold_wall_seconds": cold_wall,
        "cold_first_splice_seconds": cold["first_splice_seconds"],
        "cold_warm_entries": cold["warm_entries"],
        "warm_wall_seconds": best_warm,
        "warm_first_splice_seconds": warm["first_splice_seconds"],
        "warm_entries": warm["warm_entries"],
        "warm_hits": warm["hits"],
        "warm_vs_cold_speedup": cold_wall / best_warm if best_warm else 0.0,
        "warm_vs_oneshot_speedup":
            oneshot_wall / best_warm if best_warm else 0.0,
    }
    _RECORDED[name] = record

    def fmt(seconds):
        return "-" if seconds is None else "%.4f" % seconds

    lines = [
        "%s: repro serve warm-start (%d workers, %d resubmits)"
        % (name, SIZES["workers"], SIZES["resubmits"]),
        "  sequential        %.3fs wall" % seq_wall,
        "  oneshot (cold)    %.3fs wall, first splice %s"
        % (oneshot_wall, fmt(record["oneshot_first_splice_seconds"])),
        "  daemon cold       %.3fs wall, first splice %s, 0 warm entries"
        % (cold_wall, fmt(record["cold_first_splice_seconds"])),
        "  daemon warm       %.3fs wall, first splice %s, %d warm entries,"
        " %d hits" % (best_warm, fmt(record["warm_first_splice_seconds"]),
                      warm["warm_entries"], warm["hits"]),
        "  warm vs cold      %.2fx" % record["warm_vs_cold_speedup"],
        "  warm vs oneshot   %.2fx" % record["warm_vs_oneshot_speedup"],
    ]
    publish("serve_" + name, "\n".join(lines))

    # The tentpole's measurable claim: a warm namespace splices sooner
    # than a cold one, and re-submission beats first submission.
    assert warm["warm_entries"] > 0
    assert warm["hits"] > 0
    if record["warm_first_splice_seconds"] is not None \
            and record["cold_first_splice_seconds"] is not None:
        assert (record["warm_first_splice_seconds"]
                < record["cold_first_splice_seconds"])
    assert best_warm < cold_wall


def test_serve_collatz(tmp_path):
    _bench_workload("collatz",
                    build_collatz(count=SIZES["collatz_count"]), tmp_path)


def test_serve_ising(tmp_path):
    _bench_workload("ising",
                    build_ising(nodes=SIZES["ising_nodes"],
                                spins=SIZES["ising_spins"]), tmp_path)


def _start_serve(socket_path, cache_dir):
    try:
        os.unlink(socket_path)  # stale after a SIGKILL
    except OSError:
        pass
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", socket_path,
         "--cache-dir", cache_dir,
         "--worker-budget", str(SIZES["workers"])],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if os.path.exists(socket_path):
            return proc
        assert proc.poll() is None, "daemon died during startup"
        time.sleep(0.02)
    raise AssertionError("daemon never bound %s" % socket_path)


def test_serve_recovery(tmp_path):
    """The crash-only leg: SIGKILL the daemon mid-work, restart it, and
    measure how long until the journaled job is replayed to a
    byte-identical result. ``restart_seconds`` is socket-to-socket
    (boot + journal replay); ``replay_to_done_seconds`` is what a
    polling client experiences end to end."""
    workload = build_collatz(count=SIZES["collatz_count"])
    __, expected = _sequential(workload.program)

    socket_path = str(tmp_path / "recovery.sock")
    cache_dir = str(tmp_path / "recovery-cache")
    gen1 = _start_serve(socket_path, cache_dir)
    try:
        with ServeClient(socket_path, client="bench") as client:
            submitted = client.submit(
                workload.program,
                engine=_engine_overrides(workload.config),
                inflight_wait_bias=1e9)
            token = submitted["token"]
        killed_at = time.perf_counter()
        gen1.kill()
        gen1.wait(timeout=30)

        gen2 = _start_serve(socket_path, cache_dir)
        try:
            client = ServeClient(socket_path, client="bench", retries=8)
            status = client.status()
            restart_seconds = time.perf_counter() - killed_at
            job = client.wait(token=token, timeout=600.0)
            replay_seconds = time.perf_counter() - killed_at
            final = client.final_state(token=token)
            client.close()
        finally:
            gen2.terminate()
            gen2.wait(timeout=30)
    finally:
        if gen1.poll() is None:
            gen1.kill()
            gen1.wait(timeout=30)

    assert job["state"] == "done"
    assert job["restored"] is True
    assert final == expected

    record = {
        "restart_seconds": restart_seconds,
        "replay_to_done_seconds": replay_seconds,
        "jobs_replayed": status["jobs"]["replayed"],
        "jobs_requeued": status["jobs"]["requeued"],
    }
    _RECORDED["recovery"] = record
    publish("serve_recovery", "\n".join([
        "recovery: SIGKILL mid-job, restart, journal replay "
        "(collatz %d)" % SIZES["collatz_count"],
        "  restart (socket back + replayed)  %.3fs" % restart_seconds,
        "  client sees the result            %.3fs" % replay_seconds,
        "  jobs replayed %d, requeued %d"
        % (record["jobs_replayed"], record["jobs_requeued"]),
    ]))


def test_publish_serve_json():
    assert _RECORDED, "workload benches must run first"
    metrics = {"profile": PROFILE, "workers": SIZES["workers"]}
    for name, record in _RECORDED.items():
        for key, value in record.items():
            metrics["%s_%s" % (name, key)] = value
    publish_metrics("serve", metrics)
