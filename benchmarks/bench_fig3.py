"""Figure 3: final RWMA weight matrices per benchmark.

Paper: "Both Collatz and 2mm show a strong preference for the linear
regressor, although there are several bits ... for which the logistic
regressor is absolutely crucial. ... the Ising weight matrix clearly
shows that all four algorithms contribute significantly."
"""

import numpy as np

from conftest import publish

from repro.analysis import make_weight_matrix
from repro.analysis.weights import render_weight_matrix


def _build_matrices(all_training):
    out = {}
    for name, training in all_training.items():
        out[name] = make_weight_matrix(training)
    return out


def test_fig3_weight_matrices(benchmark, all_training):
    matrices = benchmark.pedantic(_build_matrices, args=(all_training,),
                                  rounds=1, iterations=1)

    sections = []
    for name, (matrix, algorithms) in matrices.items():
        sections.append("Figure 3 — %s (columns: %d excited bits)"
                        % (name, matrix.shape[1]))
        sections.append(render_weight_matrix(matrix, algorithms))
        shares = matrix.mean(axis=1)
        sections.append("mean weight share: " + ", ".join(
            "%s=%.2f" % (a, s) for a, s in zip(algorithms, shares)))
        sections.append("")
    publish("fig3_weights", "\n".join(sections))

    for name, (matrix, algorithms) in matrices.items():
        shares = dict(zip(algorithms, matrix.mean(axis=1)))
        # Every benchmark leans on the linear regressor for its
        # induction variables (the paper's strongest row).
        assert shares["linreg"] > 0.15, name
        # No algorithm's weight mass collapses to nothing everywhere —
        # per-bit maxima show each expert owning some bits.
        per_alg_max = matrix.max(axis=1)
        assert (per_alg_max > 0.2).sum() >= 2, name
        # Columns are normalized.
        assert np.allclose(matrix.sum(axis=0), 1.0)
