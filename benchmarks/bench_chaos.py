"""Chaos benchmark: wall-clock overhead of surviving a fault storm.

Runs each workload on the real multiprocess runtime twice — once
clean, once under a seeded :class:`~repro.runtime.faults.FaultPlan`
(kills, deadline overruns, wire corruption, slow and dropped results)
— and measures what graceful degradation costs. Both legs must end
byte-identical to a plain sequential run; the interesting numbers are
the wall-clock ratio and the supervision counters (respawns, breaker
trips, rejected frames). A third leg measures *resource pressure*
(DESIGN.md §15): a deliberately tiny shm ring spills every state blob
to the inline pipe fallback while a seeded schedule injects forced
``shm_full`` events and a contained worker OOM — degraded-mode
overhead, same byte-identical gate. Metrics land in
``results/BENCH_chaos.json``.
"""

import time

from conftest import PROFILE, publish, publish_metrics

from repro.bench import build_collatz, build_ising
from repro.core.recognizer import Recognizer
from repro.runtime import FaultPlan, RealParallelEngine, RuntimeConfig

_SIZES = {
    "full": dict(collatz_count=4000, collatz_scale=64,
                 ising_nodes=128, ising_spins=6, ising_scale=8),
    "quick": dict(collatz_count=1500, collatz_scale=32,
                  ising_nodes=64, ising_spins=6, ising_scale=8),
}
SIZES = _SIZES["quick" if PROFILE == "quick" else "full"]

_RECORDED = {}


def _sequential(program):
    machine = program.make_machine()
    start = time.perf_counter()
    machine.run(max_instructions=500_000_000)
    wall = time.perf_counter() - start
    assert machine.halted
    return wall, bytes(machine.state.buf)


def _run(workload, recognized, scale, plan=None):
    runtime_config = RuntimeConfig(n_workers=3, superstep_scale=scale,
                                   fault_plan=plan)
    return RealParallelEngine(
        workload.program, config=workload.config,
        runtime_config=runtime_config, recognized=recognized).run()


def _measure(tag, workload, scale):
    recognized = Recognizer(workload.config).find(workload.program)
    seq_wall, expected = _sequential(workload.program)
    clean = _run(workload, recognized, scale)
    assert clean.final_state == expected, "%s clean run diverged" % tag
    plan = FaultPlan(seed=42, kills=2, timeouts=2, corruptions=1,
                     slows=1, drops=1, slow_seconds=0.01, start_after=2,
                     spacing=1)
    chaotic = _run(workload, recognized, scale, plan=plan)
    assert chaotic.final_state == expected, "%s chaos run diverged" % tag
    runtime = chaotic.runtime
    overhead = (chaotic.wall_seconds / clean.wall_seconds
                if clean.wall_seconds else 0.0)
    _RECORDED.update({
        "%s_wall_sequential" % tag: seq_wall,
        "%s_wall_clean" % tag: clean.wall_seconds,
        "%s_wall_chaos" % tag: chaotic.wall_seconds,
        "%s_chaos_overhead" % tag: overhead,
        "%s_faults_injected" % tag: runtime.faults_injected,
        "%s_workers_respawned" % tag: runtime.workers_respawned,
        "%s_breaker_trips" % tag: runtime.breaker_trips,
        "%s_frames_rejected" % tag: runtime.frames_rejected,
        "%s_results_dropped" % tag: runtime.results_dropped,
        "%s_degraded_boundaries" % tag: runtime.degraded_boundaries,
    })
    publish("chaos_%s" % tag, "\n".join([
        "%s: sequential %.3fs, clean %.3fs, chaos %.3fs (%.2fx overhead)"
        % (tag, seq_wall, clean.wall_seconds, chaotic.wall_seconds,
           overhead),
        "%s: injected %s; %d respawns, %d breaker trips, %d frames "
        "rejected, %d results dropped"
        % (tag, dict(plan.injected), runtime.workers_respawned,
           runtime.breaker_trips, runtime.frames_rejected,
           runtime.results_dropped),
    ]))
    assert plan.exhausted, "fault schedule did not fully fire: %s" \
        % dict(plan.pending)


def _measure_resource_pressure(tag, workload, scale):
    """The resource-pressure leg: a tiny shm ring (every blob spills
    to the inline pipe fallback) plus a seeded resource fault schedule
    (forced shm_full events and a contained worker OOM). Measures what
    the degradation ladder costs relative to the clean run — the
    answer must stay byte-identical either way, so wall-clock and the
    pressure counters are the whole story."""
    recognized = Recognizer(workload.config).find(workload.program)
    seq_wall, expected = _sequential(workload.program)
    clean = _run(workload, recognized, scale)
    assert clean.final_state == expected, "%s clean run diverged" % tag
    plan = FaultPlan(seed=42, shm_fulls=3, worker_ooms=1,
                     start_after=2, spacing=1)
    runtime_config = RuntimeConfig(n_workers=3, superstep_scale=scale,
                                   transport="shm",
                                   shm_ring_bytes=4096,  # everything spills
                                   fault_plan=plan)
    start = time.perf_counter()
    pressured = RealParallelEngine(
        workload.program, config=workload.config,
        runtime_config=runtime_config, recognized=recognized).run()
    wall = time.perf_counter() - start
    assert pressured.final_state == expected, \
        "%s pressured run diverged" % tag
    runtime = pressured.runtime
    overhead = (wall / clean.wall_seconds if clean.wall_seconds else 0.0)
    _RECORDED.update({
        "%s_wall_pressure" % tag: wall,
        "%s_pressure_overhead" % tag: overhead,
        "%s_pressure_shm_fallbacks" % tag: runtime.shm_fallbacks,
        "%s_pressure_fallback_bytes" % tag: runtime.shm_fallback_bytes,
        "%s_pressure_ring_full" % tag: runtime.ring_full_backpressure,
        "%s_pressure_tasks_oom" % tag: runtime.tasks_oom,
        "%s_pressure_tasks_failed" % tag: runtime.tasks_failed,
    })
    publish("chaos_%s_pressure" % tag, "\n".join([
        "%s pressure: clean %.3fs, pressured %.3fs (%.2fx overhead)"
        % (tag, clean.wall_seconds, wall, overhead),
        "%s pressure: injected %s; %d fallbacks (%d bytes inline), "
        "%d ring-full, %d contained OOMs"
        % (tag, dict(plan.injected), runtime.shm_fallbacks,
           runtime.shm_fallback_bytes, runtime.ring_full_backpressure,
           runtime.tasks_oom),
    ]))
    assert plan.exhausted, "resource schedule did not fully fire: %s" \
        % dict(plan.pending)
    # The tiny ring must really have forced the fallback path, and the
    # transport ledgers must still reconcile under it (a worker whose
    # ring failed to allocate ships outside the shm ledger entirely).
    assert runtime.shm_fallbacks >= 3
    if runtime.shm_alloc_failures == 0:
        assert runtime.state_bytes_shipped == \
            runtime.shm_bytes_written + runtime.shm_fallback_bytes


def test_collatz_chaos():
    _measure("collatz", build_collatz(count=SIZES["collatz_count"]),
             SIZES["collatz_scale"])


def test_collatz_resource_pressure():
    _measure_resource_pressure(
        "collatz", build_collatz(count=SIZES["collatz_count"]),
        SIZES["collatz_scale"])


def test_ising_chaos():
    _measure("ising", build_ising(nodes=SIZES["ising_nodes"],
                                  spins=SIZES["ising_spins"]),
             SIZES["ising_scale"])


def test_publish_chaos_json():
    assert _RECORDED, "workload tests must run first"
    _RECORDED["profile"] = PROFILE
    publish_metrics("chaos", dict(_RECORDED))
