"""Table 1: recognizer statistics for each benchmark.

Paper reference (ASPLOS'14, Table 1) — absolute values are testbed-scale
(1e10-instruction runs); this reproduction's workloads are ~1e4x smaller,
so compare *ratios*: converge/jump ~ O(1..50), jump/total ~ 1e-3,
query bits << state bits.
"""

from conftest import publish

from repro.analysis import format_table, make_table1

PAPER_TABLE1 = {
    "ising": {"total": 2.3e10, "converge": 2.3e7, "jump": 1.2e7,
              "state_bits": 2.0e5, "query_bits": 640, "loc": 75,
              "unique_ips": 206},
    "2mm": {"total": 7.5e9, "converge": 2.5e7, "jump": 1.3e7,
            "state_bits": 5e7, "query_bits": 808, "loc": 154,
            "unique_ips": 162},
    "collatz": {"total": 2.0e11, "converge": 1.0e5, "jump": 3.8e6,
                "state_bits": 3e3, "query_bits": 160, "loc": 15,
                "unique_ips": 40},
}

_ROW_ORDER = [
    "total_instructions", "converge_instructions", "average_jump",
    "state_vector_bits", "cache_query_bits", "lines_of_code",
    "unique_ip_values",
]


def test_table1(benchmark, all_contexts, all_training):
    rows = benchmark.pedantic(
        make_table1, args=(all_contexts,),
        kwargs={"training": all_training}, rounds=1, iterations=1)

    publish("table1", format_table(
        rows, title="Table 1: recognizer statistics (this reproduction)",
        row_order=_ROW_ORDER, column_order=["ising", "2mm", "collatz"]))

    for name, row in rows.items():
        paper = PAPER_TABLE1[name]
        # Shape checks mirroring the paper's table:
        # a superstep is a small fraction of the run...
        assert row["average_jump"] < row["total_instructions"] / 20
        # ...queries are delta-compressed far below the state size...
        assert row["cache_query_bits"] < row["state_vector_bits"] / 10
        # ...and the benchmarks keep the paper's relative ordering.
        assert row["lines_of_code"] < 260
    assert rows["collatz"]["state_vector_bits"] \
        < rows["ising"]["state_vector_bits"] \
        < rows["2mm"]["state_vector_bits"] * 40
    assert rows["collatz"]["lines_of_code"] \
        == min(r["lines_of_code"] for r in rows.values())
    assert rows["collatz"]["unique_ip_values"] \
        == min(r["unique_ip_values"] for r in rows.values())
