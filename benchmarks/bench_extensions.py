"""The paper's §6 extensions: compiler hints and cache reuse.

1. Hybrid compiler-hint recognition (§2.1/§6): "Hybrid approaches that
   use the compiler to identify structure have the potential to
   alleviate the bottleneck due to training time." The Mini-C compiler
   exports loop-header/function-entry addresses; hint-assisted
   recognition considers only those candidates.
2. Cross-invocation cache reuse (§6): "We have only just begun exploring
   reusing the trajectory cache across different invocations of the same
   program." A memoization run's cache is persisted and reused by a
   second invocation, which starts hitting immediately.
"""

from conftest import SIZES, publish

from repro.bench import build_collatz
from repro.cluster import CostModel, laptop1
from repro.core.cache_io import deserialize_cache, serialize_cache
from repro.core.engine import MemoizingEngine
from repro.core.recognizer import Recognizer


def _hint_comparison(context):
    program = context.workload.program
    config = context.config
    plain = Recognizer(config).find(program)
    hinted = Recognizer(config.replace(use_compiler_hints=True)).find(
        program)
    plain_validated = sum(1 for c in plain.candidates if c.validated)
    hinted_validated = sum(1 for c in hinted.candidates if c.validated)
    return plain, hinted, plain_validated, hinted_validated


def test_compiler_hints_recognition(benchmark, ising_context):
    plain, hinted, plain_n, hinted_n = benchmark.pedantic(
        _hint_comparison, args=(ising_context,), rounds=1, iterations=1)
    publish("extension_hints",
            "recognition without hints: ip=0x%x superstep=%.0f "
            "(validated %d candidates)\n"
            "recognition with compiler hints: ip=0x%x superstep=%.0f "
            "(validated %d candidates)"
            % (plain.ip, plain.superstep_instructions, plain_n,
               hinted.ip, hinted.superstep_instructions, hinted_n))
    # The hinted search lands on compiler-identified structure and finds
    # a superstep of the same magnitude.
    hints = ising_context.workload.program.hints
    assert hinted.ip in hints.all_addresses()
    assert 0.4 < (hinted.superstep_instructions
                  / plain.superstep_instructions) < 2.5


def _cache_reuse():
    workload = build_collatz(count=SIZES["collatz_memo_count"],
                             memoize=True)
    recognized = Recognizer(workload.config).find_for_memoization(
        workload.program)
    factor = max(recognized.superstep_instructions / 2.3e6 / 5.22, 1e-7)
    platform = laptop1(CostModel().scaled(factor))
    cold = MemoizingEngine(workload.program, platform,
                           config=workload.config,
                           recognized=recognized).run()
    warm_cache = deserialize_cache(serialize_cache(cold.cache))
    warm = MemoizingEngine(workload.program, platform,
                           config=workload.config,
                           recognized=recognized,
                           initial_cache=warm_cache).run()
    return cold, warm


def test_cache_reuse_across_invocations(benchmark):
    cold, warm = benchmark.pedantic(_cache_reuse, rounds=1, iterations=1)
    publish("extension_cache_reuse",
            "cold invocation:  scaling=%.3f hits=%d (cache earned: %d "
            "entries, %d bytes)\n"
            "warm invocation:  scaling=%.3f hits=%d (cache preloaded)"
            % (cold.scaling, cold.stats.hits, len(cold.cache),
               cold.cache.total_bytes, warm.scaling, warm.stats.hits))
    assert warm.scaling > cold.scaling
    assert warm.stats.hits > cold.stats.hits
    # Same trajectory both times.
    assert (warm.stats.instructions_executed
            + warm.stats.instructions_fast_forwarded) \
        == (cold.stats.instructions_executed
            + cold.stats.instructions_fast_forwarded)
