"""Figure 6: Collatz on the server, Blue Gene/P, and a single core.

Paper shape targets: large available parallelism from the outer loop
(scaling on both cluster platforms), and — on one core, with speculation
impossible — a generalized-memoization curve that starts below 1
(dependency-tracking overhead), rises as cached inner-loop suffixes hit,
and asymptotes around 1.3-1.4x.
"""

from conftest import SIZES, publish

from repro.analysis import format_series, memoization_curve, scaling_sweep
from repro.analysis.scaling import ideal_series


def _cluster_series(context):
    server = list(SIZES["server_cores"])
    bgp = list(SIZES["bgp_cores"])
    return {
        "server": {
            "ideal": ideal_series(server),
            "cycle-count": scaling_sweep(context, server,
                                         cycle_count=True,
                                         collect_prediction_stats=False),
            "lasc": scaling_sweep(context, server,
                                  collect_prediction_stats=False),
        },
        "bluegene": {
            "ideal": ideal_series(bgp),
            "cycle-count": scaling_sweep(context, bgp,
                                         platform="bluegene_p",
                                         cycle_count=True,
                                         collect_prediction_stats=False),
            "lasc": scaling_sweep(context, bgp, platform="bluegene_p",
                                  collect_prediction_stats=False),
        },
    }


def test_fig6_collatz_clusters(benchmark, collatz_context):
    series = benchmark.pedantic(_cluster_series, args=(collatz_context,),
                                rounds=1, iterations=1)
    text = "\n\n".join(
        format_series(series[key],
                      title="Figure 6 (%s): Collatz" % key)
        for key in ("server", "bluegene"))
    publish("fig6_collatz_clusters", text)

    server = {p.n_cores: p.scaling for p in series["server"]["lasc"]}
    bgp = {p.n_cores: p.scaling for p in series["bluegene"]["lasc"]}
    top_server = max(SIZES["server_cores"])
    top_bgp = max(SIZES["bgp_cores"])
    # The outer loop parallelizes: solid scaling on the server...
    assert server[top_server] > 3.0
    # ...and more headroom on Blue Gene/P.
    assert bgp[top_bgp] >= server[top_server]
    assert bgp[top_bgp] > 8.0


def test_fig6_collatz_memoization(benchmark, collatz_memo_context):
    result = benchmark.pedantic(memoization_curve,
                                args=(collatz_memo_context,),
                                rounds=1, iterations=1)
    lines = ["Figure 6 (right): Collatz single-core generalized "
             "memoization",
             "%12s  %8s" % ("instructions", "scaling")]
    for point in result.timeline:
        lines.append("%12d  %8.3f" % (point.instructions, point.scaling))
    lines.append("final: scaling=%.3f hits=%d misses=%d"
                 % (result.scaling, result.stats.hits,
                    result.stats.misses))
    publish("fig6_collatz_memoization", "\n".join(lines))

    # The paper's curve: starts below 1 (tracking overhead), rises as
    # the cache of the program's own past pays off, asymptotes ~1.3x.
    assert result.timeline[0].scaling < 1.0
    assert result.scaling > 1.1
    assert result.scaling < 2.5
    # Rising then flattening: the last quarter gains less than the
    # second quarter did.
    quarter = len(result.timeline) // 4
    early_gain = (result.timeline[2 * quarter].scaling
                  - result.timeline[quarter].scaling)
    late_gain = (result.timeline[-1].scaling
                 - result.timeline[3 * quarter].scaling)
    assert late_gain <= early_gain + 0.05
