"""Ablations of the design choices DESIGN.md calls out.

1. Dependency keying vs whole-state matching: the cache's hit rate
   collapses if entries must match the entire state vector (§4.2's
   motivating claim).
2. RWMA vs equal weighting vs single predictors: the regret minimizer
   earns its keep (§4.5.1).
3. Code-read tracking: the faithful mode inflates entry dependency sets;
   the default write-protected mode keeps them sparse.
"""

import numpy as np

from conftest import publish

from repro.analysis.training import train_on_boundaries
from repro.core.speculation import run_speculation
from repro.machine.executor import STOP_BREAKPOINT


def _boundary_entries(context, n_entries=24, track_code_reads=False):
    """Entries for consecutive supersteps from real boundary states."""
    program = context.workload.program
    recognized = context.recognized
    machine = program.make_machine()
    vm = program.make_context(track_code_reads=track_code_reads)
    rip = recognized.ip
    budget = recognized.speculation_budget(4.0)
    entries = []
    states = []
    while len(entries) < n_entries:
        stop = False
        for __ in range(recognized.stride):
            result = machine.run(max_instructions=10_000_000,
                                 break_ips=frozenset((rip,)))
            if result.reason != STOP_BREAKPOINT:
                stop = True
                break
        if stop:
            break
        snapshot = bytes(machine.state.buf)
        states.append(snapshot)
        spec = run_speculation(vm, snapshot, rip, recognized.stride, budget)
        if spec.entry is not None:
            entries.append(spec.entry)
    return entries, states


def test_dependency_keying_vs_whole_state(benchmark, ising_context):
    entries, states = benchmark.pedantic(
        _boundary_entries, args=(ising_context,), rounds=1, iterations=1)

    dep_survives = 0
    whole_survives = 0
    perturbed_total = 0
    for entry, state in zip(entries, states):
        assert entry.matches(state)
        # Perturb one byte the speculation never read (a dead temporary:
        # EAX's low byte — word 0 is written before read at boundaries).
        perturbed = bytearray(state)
        victim = 0
        if victim in entry.start_indices.tolist():
            continue
        perturbed[victim] ^= 0xFF
        perturbed_total += 1
        if entry.matches(perturbed):
            dep_survives += 1
        if bytes(perturbed) == state:
            whole_survives += 1
    publish("ablation_dependency_keying",
            "after perturbing one irrelevant byte: dependency-keyed "
            "matches %d/%d, whole-state matches %d/%d; mean dependency "
            "bytes per entry: %.0f of %d state bytes"
            % (dep_survives, perturbed_total, whole_survives,
               perturbed_total,
               np.mean([len(e.start_indices) for e in entries]),
               len(states[0])))
    # Dependency keying tolerates irrelevant-byte mismatches that sink
    # whole-state matching entirely (§4.2).
    assert perturbed_total > 0
    assert dep_survives == perturbed_total
    assert whole_survives == 0
    # And dependencies are a tiny, sparse slice of the state.
    assert np.mean([len(e.start_indices) for e in entries]) \
        < len(states[0]) / 20


def test_code_read_tracking_inflates_entries(benchmark, ising_context):
    sparse, __ = benchmark.pedantic(
        _boundary_entries, args=(ising_context,),
        kwargs={"n_entries": 4}, rounds=1, iterations=1)
    faithful, __ = _boundary_entries(ising_context, n_entries=4,
                                     track_code_reads=True)
    sparse_size = np.mean([len(e.start_indices) for e in sparse])
    faithful_size = np.mean([len(e.start_indices) for e in faithful])
    publish("ablation_code_reads",
            "entry dependency bytes: write-protected=%.0f, "
            "faithful code-read tracking=%.0f" % (sparse_size,
                                                  faithful_size))
    # Tracking instruction fetches drags the whole superstep's code
    # footprint into every entry.
    assert faithful_size > 4 * sparse_size


def test_rwma_vs_alternatives(benchmark, ising_context):
    training = benchmark.pedantic(
        train_on_boundaries, args=(ising_context,),
        kwargs={"max_boundaries": 150}, rounds=1, iterations=1)
    pstats = training.prediction_stats
    relevant = training.relevant_bits
    actual = pstats.actual_error_rate(relevant)
    equal = pstats.equal_weight_error_rate(relevant)
    hindsight = pstats.hindsight_error_rate(relevant)
    publish("ablation_rwma",
            "state error rates on dependency bits: rwma=%.3f "
            "equal-weight=%.3f hindsight-optimal=%.3f"
            % (actual, equal, hindsight))
    assert actual <= equal
    assert actual <= hindsight + 0.15
