"""Real multiprocess runtime: measured wall-clock scaling.

Unlike every other benchmark in this directory, nothing here is
simulated: speculations run on a pool of real OS worker processes
(:mod:`repro.runtime`), cache entries travel over pipes, and all times
are wall-clock. Three legs per workload:

* **sequential** — a plain uninstrumented run (the baseline);
* **cold** at 1/2/4 workers — the full ASC loop from scratch. On a
  machine with spare cores this is where speedup appears; on a
  single-core CI container the workers *compete* with the main thread,
  so cold speedup is honestly < 1 and recorded as such (the paper's
  gains come from spare cores, see DESIGN.md §8);
* **warm** at 4 workers — rerun with every cold leg's trajectory cache
  preloaded (the paper's §6 cache-reuse axis). The main thread
  fast-forwards over entries that real workers shipped over the wire,
  which beats sequential wall-clock even with zero spare cores.

Every leg asserts the final state is byte-identical to sequential.
Metrics land in ``results/BENCH_parallel.json``.
"""

import time

import pytest

from conftest import PROFILE, publish, publish_metrics

from repro.bench import build_collatz, build_ising
from repro.core.recognizer import Recognizer
from repro.core.trajectory_cache import TrajectoryCache
from repro.runtime import RealParallelEngine, RuntimeConfig

_SIZES = {
    "full": dict(collatz_count=8000, collatz_scale=64,
                 ising_nodes=256, ising_spins=8, ising_scale=16,
                 workers=(1, 2, 4)),
    "quick": dict(collatz_count=4000, collatz_scale=64,
                  ising_nodes=128, ising_spins=6, ising_scale=8,
                  workers=(1, 2, 4)),
}
SIZES = _SIZES["quick" if PROFILE == "quick" else "full"]

#: Filled by the workload tests, consumed by test_publish_parallel_json
#: (tests in this module run in definition order under pytest).
_RECORDED = {}


def _sequential_wall(program):
    machine = program.make_machine()
    start = time.perf_counter()
    machine.run(max_instructions=500_000_000)
    wall = time.perf_counter() - start
    assert machine.halted
    return wall, bytes(machine.state.buf)


def _real_run(workload, recognized, n_workers, scale, initial_cache=None,
              transport=None):
    runtime_config = RuntimeConfig(
        n_workers=n_workers,
        superstep_scale=scale,
        transport=transport)
    engine = RealParallelEngine(
        workload.program, config=workload.config,
        runtime_config=runtime_config, recognized=recognized,
        initial_cache=initial_cache)
    return engine.run()


def _wire_metrics(prefix, runtime):
    """Per-leg transport accounting: future PRs are judged on bytes
    moved, not just wall-clock."""
    physical = runtime.bytes_sent + runtime.bytes_received
    logical = runtime.logical_bytes_sent + runtime.logical_bytes_received
    ratio = (runtime.state_bytes_raw / runtime.state_bytes_shipped
             if runtime.state_bytes_shipped else 0.0)
    return {
        "%s_pipe_bytes" % prefix: physical,
        "%s_pipe_bytes_sent" % prefix: runtime.bytes_sent,
        "%s_pipe_bytes_received" % prefix: runtime.bytes_received,
        "%s_logical_bytes" % prefix: logical,
        "%s_shm_bytes" % prefix: (runtime.shm_bytes_written
                                  + runtime.shm_bytes_read),
        "%s_delta_compression" % prefix: ratio,
        "%s_states_delta" % prefix: runtime.states_delta,
        "%s_states_full" % prefix: runtime.states_full,
        "%s_wire_reduction" % prefix: (logical / physical
                                       if physical else 0.0),
    }


def _measure_workload(tag, workload, scale):
    recognized = Recognizer(workload.config).find(workload.program)
    seq_wall, expected = _sequential_wall(workload.program)
    metrics = {"%s_wall_sequential" % tag: seq_wall}
    lines = ["%s: sequential %.3fs" % (tag, seq_wall)]
    learned = TrajectoryCache(capacity_bytes=1 << 30)
    for n_workers in SIZES["workers"]:
        result = _real_run(workload, recognized, n_workers, scale)
        assert result.final_state == expected, \
            "%s cold x%d diverged from sequential" % (tag, n_workers)
        speedup = result.speedup_vs(seq_wall)
        metrics["%s_wall_cold_%dw" % (tag, n_workers)] = result.wall_seconds
        metrics["%s_speedup_cold_%dw" % (tag, n_workers)] = speedup
        metrics.update(_wire_metrics("%s_cold_%dw" % (tag, n_workers),
                                     result.runtime))
        lines.append("%s: cold %dw %.3fs (%.2fx) — %d shipped, %d used, "
                     "%d/%d pipe bytes out/in (logical %d/%d)"
                     % (tag, n_workers, result.wall_seconds, speedup,
                        result.runtime.entries_shipped,
                        result.runtime.entries_used,
                        result.runtime.bytes_sent,
                        result.runtime.bytes_received,
                        result.runtime.logical_bytes_sent,
                        result.runtime.logical_bytes_received))
        for entry in result.cache.entries():
            learned.insert(entry)
    # Warm leg: everything the cold runs' workers learned, reused — the
    # paper's §6 persistent-cache axis, measured in wall-clock. Run it
    # on both transports so the wire win is a measured A/B, not an
    # estimate: same cache, same work, only the transport differs.
    warm_pipe = _real_run(workload, recognized, SIZES["workers"][-1],
                          scale, initial_cache=learned, transport="pipe")
    assert warm_pipe.final_state == expected, "%s warm(pipe) diverged" % tag
    metrics["%s_wall_warm_pipe_%dw" % (tag, SIZES["workers"][-1])] = \
        warm_pipe.wall_seconds
    warm = _real_run(workload, recognized, SIZES["workers"][-1], scale,
                     initial_cache=learned, transport="shm")
    assert warm.final_state == expected, "%s warm diverged" % tag
    warm_speedup = warm.speedup_vs(seq_wall)
    metrics["%s_wall_warm_%dw" % (tag, SIZES["workers"][-1])] = \
        warm.wall_seconds
    metrics["%s_speedup_warm_%dw" % (tag, SIZES["workers"][-1])] = \
        warm_speedup
    metrics["%s_warm_hits" % tag] = warm.stats.hits
    metrics["%s_warm_fast_forwarded" % tag] = \
        warm.stats.instructions_fast_forwarded
    warm_prefix = "%s_warm_%dw" % (tag, SIZES["workers"][-1])
    metrics.update(_wire_metrics(warm_prefix, warm.runtime))
    pipe_physical = (warm_pipe.runtime.bytes_sent
                     + warm_pipe.runtime.bytes_received)
    shm_physical = warm.runtime.bytes_sent + warm.runtime.bytes_received
    metrics["%s_pipe_transport_bytes" % warm_prefix] = pipe_physical
    metrics["%s_wire_reduction_vs_pipe" % warm_prefix] = \
        pipe_physical / shm_physical if shm_physical else 0.0
    lines.append("%s: warm %dw %.3fs (%.2fx) — %d hits, %d instructions "
                 "fast-forwarded; pipe bytes %d (shm) vs %d (pipe "
                 "transport), %.1fx off the wire"
                 % (tag, SIZES["workers"][-1], warm.wall_seconds,
                    warm_speedup, warm.stats.hits,
                    warm.stats.instructions_fast_forwarded, shm_physical,
                    pipe_physical,
                    metrics["%s_wire_reduction_vs_pipe" % warm_prefix]))
    publish("parallel_runtime_%s" % tag, "\n".join(lines))
    _RECORDED.update(metrics)
    return warm_speedup


def test_collatz_real_runtime():
    workload = build_collatz(count=SIZES["collatz_count"])
    speedup = _measure_workload("collatz", workload,
                                 SIZES["collatz_scale"])
    # The acceptance bar: real worker-produced entries must pay off in
    # measured wall-clock on at least the warm leg, even on one core.
    assert speedup > 1.0


def test_ising_real_runtime():
    workload = build_ising(nodes=SIZES["ising_nodes"],
                           spins=SIZES["ising_spins"])
    _measure_workload("ising", workload, SIZES["ising_scale"])


def test_publish_parallel_json():
    assert _RECORDED, "workload tests must run first"
    _RECORDED["profile"] = PROFILE
    best_warm = max(value for key, value in _RECORDED.items()
                    if isinstance(value, float) and "_speedup_warm_" in key)
    _RECORDED["best_warm_speedup"] = best_warm
    publish_metrics("parallel", dict(_RECORDED))
    assert best_warm > 1.0
