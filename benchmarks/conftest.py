"""Shared fixtures for the paper-reproduction benchmark harness.

Every benchmark regenerates one table or figure from §5 of the paper.
Workload sizes are scaled down ~1e4x from the paper's (see DESIGN.md);
the cost model is scaled by the same factor so curve *shapes* are
preserved. Set ``REPRO_BENCH_PROFILE=quick`` for a faster, smaller pass.

Rendered outputs are written to ``benchmarks/results/*.txt`` and printed
(run with ``-s`` to see them inline); EXPERIMENTS.md collates them against
the paper's numbers.
"""

import json
import os
import pathlib

import pytest

from repro.analysis import ExperimentContext
from repro.analysis.training import train_on_boundaries
from repro.bench import build_collatz, build_ising, build_mm2

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "full")

_SIZES = {
    "full": dict(ising_nodes=512, ising_spins=8, mm2_n=16,
                 collatz_count=1500, collatz_memo_count=800,
                 server_cores=(1, 2, 4, 8, 16, 24, 32),
                 bgp_cores=(2, 8, 32, 128, 512, 1024, 2048, 4096)),
    "quick": dict(ising_nodes=128, ising_spins=6, mm2_n=10,
                  collatz_count=400, collatz_memo_count=250,
                  server_cores=(1, 4, 16, 32),
                  bgp_cores=(8, 64, 512, 2048)),
}

SIZES = _SIZES["quick" if PROFILE == "quick" else "full"]

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def publish(name, text):
    """Print a rendered table/series and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / ("%s.txt" % name)).write_text(text + "\n")
    print("\n" + text)


def publish_metrics(name, metrics):
    """Persist machine-readable metrics as ``results/BENCH_<name>.json``.

    Each call rotates the existing file's metrics into a ``previous``
    section and records per-metric ``speedup_vs_previous`` ratios, so
    the perf trajectory is tracked across PRs. Returns the payload.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / ("BENCH_%s.json" % name)
    previous = None
    if path.exists():
        try:
            previous = json.loads(path.read_text()).get("metrics")
        except (ValueError, OSError):
            previous = None
    speedups = {}
    if previous:
        for key, value in metrics.items():
            old = previous.get(key)
            if (isinstance(value, (int, float))
                    and isinstance(old, (int, float)) and old):
                speedups[key] = value / old
    payload = {"metrics": metrics, "previous": previous,
               "speedup_vs_previous": speedups}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print("\n[%s] %s" % (path.name, json.dumps(metrics, sort_keys=True)))
    return payload


@pytest.fixture(scope="session")
def ising_context():
    return ExperimentContext(build_ising(nodes=SIZES["ising_nodes"],
                                         spins=SIZES["ising_spins"]))


@pytest.fixture(scope="session")
def mm2_context():
    return ExperimentContext(build_mm2(n=SIZES["mm2_n"]))


@pytest.fixture(scope="session")
def collatz_context():
    return ExperimentContext(build_collatz(count=SIZES["collatz_count"]))


@pytest.fixture(scope="session")
def collatz_memo_context():
    return ExperimentContext(
        build_collatz(count=SIZES["collatz_memo_count"], memoize=True),
        memoization=True)


@pytest.fixture(scope="session")
def all_contexts(ising_context, mm2_context, collatz_context):
    return {"ising": ising_context, "2mm": mm2_context,
            "collatz": collatz_context}


@pytest.fixture(scope="session")
def all_training(all_contexts):
    return {name: train_on_boundaries(context)
            for name, context in all_contexts.items()}
