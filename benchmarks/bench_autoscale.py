"""Elastic autoscaling: each policy vs every static width, wall-clock.

``--workers N`` freezes the speculation/cores trade for a whole run;
the autoscaler (:mod:`repro.runtime.autoscaler`) re-prices it at every
superstep boundary. Three legs, all on the real multiprocess runtime
with measured wall-clock, each comparing static widths 1/2/4 against
the three policies started at the *widest* static width (the worst
misprovision a fixed ``--workers`` can make):

* **cold collatz** — empty cache. Without spare cores every static
  width loses wall-clock to sequential (``BENCH_parallel.json``); a
  policy with ``min_workers=0`` should collapse the pool and approach
  sequential — the paper's "speculation must cover its cores" argument
  closed online.
* **warm ising** — trajectory cache pre-learned by a cold run. Hits
  fast-forward the main thread regardless of pool width, so the
  policies' job is to walk the misprovisioned width down toward the
  best static wall.
* **phase collatz** — the cold leg's learned cache truncated to its
  first half: a warm phase that falls off a cliff mid-run. Static
  widths pay full speculation overhead through the dead phase; the
  policies shed capacity when the payoff signal dies.

Every run asserts the final state is byte-identical to sequential, and
every leg asserts zero live shared-memory segments afterward (the
grow/retire hygiene gate). Metrics land in
``results/BENCH_autoscale.json``; the publish test asserts at least
one leg where a policy beats the best static width on wall-clock.
"""

import time

from conftest import PROFILE, publish, publish_metrics

from repro.bench import build_collatz, build_ising
from repro.core.recognizer import Recognizer
from repro.core.trajectory_cache import TrajectoryCache
from repro.runtime import AUTOSCALE_POLICIES, RealParallelEngine, \
    RuntimeConfig
from repro.runtime import shm

_SIZES = {
    "full": dict(collatz_count=4000, collatz_scale=64,
                 ising_nodes=256, ising_spins=8, ising_scale=16,
                 static=(1, 2, 4)),
    "quick": dict(collatz_count=2000, collatz_scale=64,
                  ising_nodes=128, ising_spins=6, ising_scale=8,
                  static=(1, 2, 4)),
}
SIZES = _SIZES["quick" if PROFILE == "quick" else "full"]

#: Filled by the leg tests, consumed by test_publish_autoscale_json
#: (tests in this module run in definition order under pytest).
_RECORDED = {}

#: The cold leg's aggregated collatz cache, reused by the phase leg.
_LEARNED = {}


def _sequential_wall(program):
    machine = program.make_machine()
    start = time.perf_counter()
    machine.run(max_instructions=500_000_000)
    wall = time.perf_counter() - start
    assert machine.halted
    return wall, bytes(machine.state.buf)


def _run(workload, recognized, scale, n_workers, policy="off",
         initial_cache=None):
    runtime_config = RuntimeConfig(
        n_workers=n_workers,
        superstep_scale=scale,
        autoscale=policy,
        autoscale_min_workers=0,
        autoscale_max_workers=max(SIZES["static"]),
        # Short runs: decide every other boundary over a tight window,
        # so the policies get a fair number of moves per leg.
        autoscale_cooldown=2,
        autoscale_window=6)
    engine = RealParallelEngine(
        workload.program, config=workload.config,
        runtime_config=runtime_config, recognized=recognized,
        initial_cache=initial_cache)
    return engine.run()


def _measure_leg(tag, workload, scale, initial_cache=None, learned=None):
    """Static widths, then each policy from the widest static width.

    Returns True when some policy beat the best static wall-clock.
    ``learned`` (a TrajectoryCache) collects every entry the static
    runs' workers shipped, for reuse as a later leg's warm cache.
    """
    recognized = Recognizer(workload.config).find(workload.program)
    seq_wall, expected = _sequential_wall(workload.program)
    metrics = {"%s_wall_sequential" % tag: seq_wall}
    lines = ["%s: sequential %.3fs" % (tag, seq_wall)]
    best_static = float("inf")
    for n_workers in SIZES["static"]:
        result = _run(workload, recognized, scale, n_workers,
                      initial_cache=initial_cache)
        assert result.final_state == expected, \
            "%s static x%d diverged from sequential" % (tag, n_workers)
        best_static = min(best_static, result.wall_seconds)
        metrics["%s_wall_static_%dw" % (tag, n_workers)] = \
            result.wall_seconds
        metrics["%s_speedup_static_%dw" % (tag, n_workers)] = \
            result.speedup_vs(seq_wall)
        lines.append("%s: static %dw %.3fs (%.2fx) — %d hits, %d shipped"
                     % (tag, n_workers, result.wall_seconds,
                        result.speedup_vs(seq_wall), result.stats.hits,
                        result.runtime.entries_shipped))
        if learned is not None:
            for entry in result.cache.entries():
                learned.insert(entry)
    start_width = max(SIZES["static"])
    best_policy = float("inf")
    for policy in AUTOSCALE_POLICIES:
        result = _run(workload, recognized, scale, start_width,
                      policy=policy, initial_cache=initial_cache)
        assert result.final_state == expected, \
            "%s %s diverged from sequential" % (tag, policy)
        runtime = result.runtime
        best_policy = min(best_policy, result.wall_seconds)
        decisions = runtime.autoscale_decisions
        final_width = decisions[-1]["target"] if decisions else start_width
        metrics["%s_wall_%s" % (tag, policy)] = result.wall_seconds
        metrics["%s_speedup_%s" % (tag, policy)] = \
            result.speedup_vs(seq_wall)
        metrics["%s_resizes_%s" % (tag, policy)] = \
            runtime.autoscale_resizes
        metrics["%s_workers_grown_%s" % (tag, policy)] = \
            runtime.workers_grown
        metrics["%s_workers_parked_%s" % (tag, policy)] = \
            runtime.workers_parked
        metrics["%s_final_width_%s" % (tag, policy)] = final_width
        lines.append("%s: %s %.3fs (%.2fx) — %d resizes %s, final width "
                     "%d" % (tag, policy, result.wall_seconds,
                             result.speedup_vs(seq_wall),
                             runtime.autoscale_resizes,
                             ["%d->%d" % (d["from"], d["target"])
                              for d in decisions], final_width))
    # Grow/retire hygiene: every leg leaves zero live segments behind.
    assert shm.live_segment_names() == [], \
        "%s leaked shm segments: %s" % (tag, shm.live_segment_names())
    won = best_policy < best_static
    metrics["%s_best_static_wall" % tag] = best_static
    metrics["%s_best_policy_wall" % tag] = best_policy
    metrics["%s_policy_beats_best_static" % tag] = won
    lines.append("%s: best policy %.3fs vs best static %.3fs — policy "
                 "%s" % (tag, best_policy, best_static,
                         "wins" if won else "loses"))
    publish("autoscale_%s" % tag, "\n".join(lines))
    _RECORDED.update(metrics)
    return won


def test_cold_collatz_autoscale():
    """The ISSUE's target regime: cold cache, utility underwater, so
    the autoscaler should collapse toward zero speculation workers and
    approach sequential wall-clock while every static width bleeds."""
    workload = build_collatz(count=SIZES["collatz_count"])
    learned = TrajectoryCache(capacity_bytes=1 << 30)
    _measure_leg("cold_collatz", workload, SIZES["collatz_scale"],
                 learned=learned)
    _LEARNED["collatz"] = (workload, learned)
    # Sanity floor (the hard cross-leg bar lives in the publish test):
    # a collapsing pool must land within 2x of sequential, not at the
    # widest static width's wall.
    assert _RECORDED["cold_collatz_best_policy_wall"] <= \
        2.0 * _RECORDED["cold_collatz_wall_sequential"]


def test_warm_ising_autoscale():
    workload = build_ising(nodes=SIZES["ising_nodes"],
                           spins=SIZES["ising_spins"])
    recognized = Recognizer(workload.config).find(workload.program)
    learn = _run(workload, recognized, SIZES["ising_scale"], n_workers=2)
    warm = TrajectoryCache(capacity_bytes=1 << 30)
    for entry in learn.cache.entries():
        warm.insert(entry)
    _measure_leg("warm_ising", workload, SIZES["ising_scale"],
                 initial_cache=warm)


def test_phase_collatz_autoscale():
    """Warm cache truncated to its first half: high payoff until the
    entries run out mid-run, then a dead phase — the regime where a
    static width keeps paying for speculation that stopped landing."""
    assert "collatz" in _LEARNED, "cold collatz leg must run first"
    workload, learned = _LEARNED["collatz"]
    entries = list(learned.entries())
    assert entries, "cold leg shipped no entries to truncate"
    half = TrajectoryCache(capacity_bytes=1 << 30)
    for entry in entries[:len(entries) // 2]:
        half.insert(entry)
    _measure_leg("phase_collatz", workload, SIZES["collatz_scale"],
                 initial_cache=half)


def test_publish_autoscale_json():
    assert _RECORDED, "leg tests must run first"
    _RECORDED["profile"] = PROFILE
    wins = sorted(key[:-len("_policy_beats_best_static")]
                  for key, value in _RECORDED.items()
                  if key.endswith("_policy_beats_best_static") and value)
    _RECORDED["legs_won_by_policy"] = len(wins)
    publish_metrics("autoscale", dict(_RECORDED))
    # The acceptance bar: at least one leg where an autoscale policy
    # beats the best static width on measured wall-clock.
    assert wins, "no leg had a policy beat the best static width"
