"""Figure 4: Ising scaling on the 32-core server and Blue Gene/P.

Paper shape targets: on the server, hand-parallelized is near-ideal,
LASC+oracle overlaps LASC (prediction accuracy is not the bottleneck),
and cycle-count scaling upper-bounds both. On Blue Gene/P, LASC scales
near-linearly to hundreds of cores and flattens once misprediction
recovery and the finite list bound it (the paper reports 256x at 1024
cores for a 2000-node list, dropping past 2000 cores).
"""

from conftest import SIZES, publish

from repro.analysis import format_series, scaling_sweep
from repro.analysis.scaling import ideal_series
from repro.bench.handparallel import hand_parallel_scaling


def _server_series(context):
    cores = list(SIZES["server_cores"])
    nodes = context.workload.params["nodes"]
    total = context.record.total_instructions
    return {
        "ideal": ideal_series(cores),
        "hand-parallel": [
            type(p)(p.n_cores, hand_parallel_scaling(p.n_cores, total,
                                                     nodes))
            for p in ideal_series(cores)],
        "cycle-count": scaling_sweep(context, cores, cycle_count=True,
                                     collect_prediction_stats=False),
        "lasc+oracle": scaling_sweep(context, cores, oracle=True),
        "lasc": scaling_sweep(context, cores,
                              collect_prediction_stats=False),
    }


def _bgp_series(context):
    cores = list(SIZES["bgp_cores"])
    return {
        "ideal": ideal_series(cores),
        "cycle-count": scaling_sweep(context, cores,
                                     platform="bluegene_p",
                                     cycle_count=True,
                                     collect_prediction_stats=False),
        "lasc": scaling_sweep(context, cores, platform="bluegene_p",
                              collect_prediction_stats=False),
    }


def test_fig4_ising_server(benchmark, ising_context):
    series = benchmark.pedantic(_server_series, args=(ising_context,),
                                rounds=1, iterations=1)
    publish("fig4_ising_server", format_series(
        series, title="Figure 4 (left): Ising on the 32-core server"))

    by = {name: {p.n_cores: p.scaling for p in points}
          for name, points in series.items()}
    top = max(SIZES["server_cores"])
    # Hand-parallelized is near-ideal (paper: perfect to 32 cores).
    assert by["hand-parallel"][top] > 0.8 * top
    # LASC scales: meaningfully above 1 and growing with cores.
    assert by["lasc"][top] > 3.0
    assert by["lasc"][top] > by["lasc"][4]
    # Oracle and actual overlap: prediction is not the bottleneck.
    assert abs(by["lasc+oracle"][top] - by["lasc"][top]) \
        <= 0.35 * by["lasc+oracle"][top]
    # Cycle-count (zero overhead) upper-bounds the full system.
    assert by["cycle-count"][top] >= by["lasc"][top] * 0.95


def test_fig4_ising_bluegene(benchmark, ising_context):
    series = benchmark.pedantic(_bgp_series, args=(ising_context,),
                                rounds=1, iterations=1)
    publish("fig4_ising_bluegene", format_series(
        series, title="Figure 4 (right): Ising on Blue Gene/P (log-log "
                      "in the paper)"))

    lasc = {p.n_cores: p.scaling for p in series["lasc"]}
    cores = sorted(lasc)
    # Near-linear growth through the first decades, then a plateau.
    assert lasc[cores[-1]] > 8.0
    mid = cores[len(cores) // 2]
    assert lasc[mid] > lasc[cores[0]]
    # Scaling saturates (does not keep growing linearly) at high counts:
    # the finite list and misprediction recovery bound it.
    assert lasc[cores[-1]] < 0.5 * cores[-1]
