"""Table 2: prediction error rates and cache miss rates.

Paper reference (ASPLOS'14, Table 2):

===========================  ======  ======  =======
                              Ising    2mm   Collatz
equal-weight error (1 core)   99.1%   92.6%    99.9%
hindsight-optimal error        1.1%   10.2%     1.7%
actual error (RWMA)            1.2%    3.2%     1.9%
cache miss rate (32 cores)     0.5%    2.9%     0.3%
===========================  ======  ======  =======

Shape targets: the regret-minimized (actual) rate lands near the
hindsight-optimal rate and far below equal weighting; the 32-core cache
miss rate is low because dependency keying forgives irrelevant bits.
"""

from conftest import publish

from repro.analysis import format_table, make_table2

_ROW_ORDER = [
    "equal_weight_error_rate", "hindsight_optimal_error_rate",
    "actual_error_rate", "total_predictions", "incorrect_predictions",
    "cache_miss_rate_32_cores",
]


def test_table2(benchmark, all_contexts, all_training):
    rows = benchmark.pedantic(
        make_table2, args=(all_contexts,),
        kwargs={"training": all_training}, rounds=1, iterations=1)

    publish("table2", format_table(
        rows, title="Table 2: prediction error and cache miss rates",
        row_order=_ROW_ORDER, column_order=["ising", "2mm", "collatz"]))

    for name, row in rows.items():
        actual = row["actual_error_rate"]
        equal = row["equal_weight_error_rate"]
        hindsight = row["hindsight_optimal_error_rate"]
        # RWMA beats equal weighting decisively...
        assert equal >= actual
        # ...and tracks the clairvoyant best-expert mix closely.
        assert actual <= hindsight + 0.15
        # Dependency-keyed matching keeps actual errors low in absolute
        # terms (paper: 1.2-3.2%).
        assert actual < 0.35
        assert row["total_predictions"] > 50
    # Cache miss rates at 32 cores stay moderate (the paper's are <3%;
    # ours include pipeline-late misses, see EXPERIMENTS.md).
    for name, row in rows.items():
        assert row["cache_miss_rate_32_cores"] < 0.5
