"""Figure 5: Polybench 2mm scaling on the 32-core server.

Paper shape targets: 2mm's cycle-count potential is much higher than its
realized scaling; the oracle line shows prediction accuracy is not the
limit — recursive-prediction time over its much larger tracked-bit set
is, producing an asymptote around 10x where Ising keeps climbing.
"""

from conftest import SIZES, publish

from repro.analysis import format_series, scaling_sweep
from repro.analysis.scaling import ideal_series


def _series(context):
    cores = list(SIZES["server_cores"])
    return {
        "ideal": ideal_series(cores),
        "cycle-count": scaling_sweep(context, cores, cycle_count=True,
                                     collect_prediction_stats=False),
        "lasc+oracle": scaling_sweep(context, cores, oracle=True),
        "lasc": scaling_sweep(context, cores,
                              collect_prediction_stats=False),
    }


def test_fig5_2mm_server(benchmark, mm2_context, ising_context):
    series = benchmark.pedantic(_series, args=(mm2_context,),
                                rounds=1, iterations=1)
    publish("fig5_2mm_server", format_series(
        series, title="Figure 5: 2mm on the 32-core server"))

    by = {name: {p.n_cores: p.scaling for p in points}
          for name, points in series.items()}
    top = max(SIZES["server_cores"])
    # 2mm scales, but modestly (paper: asymptote ~10x).
    assert 1.5 < by["lasc"][top] < top
    # Oracle tracks actual: accuracy is not the bottleneck (paper §5.4).
    assert by["lasc+oracle"][top] >= by["lasc"][top] * 0.9
    # Cycle-count potential well above realized scaling.
    assert by["cycle-count"][top] >= by["lasc"][top]
    assert series["lasc"][-1].result.stats.hits > 0
