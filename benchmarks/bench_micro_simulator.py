"""§5.3 micro-benchmarks: simulator instruction rates.

The paper measures its TBFS at 2.6 MIPS baseline and 2.3 MIPS with
dependency tracking (13% overhead). Those are the *modeled* rates every
experiment charges; this module both asserts the model and measures the
real Python VM's throughput through two interpreter tiers — the
reference transition function and the block-cache fast path
(:mod:`repro.machine.blockcache`) — publishing the rates and the fast
path's speedup to ``results/BENCH_micro.json``.
"""

import time

import pytest

from conftest import publish, publish_metrics

from repro.cluster import CostModel
from repro.machine import DepVector
from repro.minic import compile_source

_HOT_LOOP = """
int sink;
int main() {
    int i;
    int x = 0;
    for (i = 0; i < 12000; i++) { x = x + i; x = x ^ (i << 1); }
    sink = x;
    return x;
}
"""

#: Minimum fast-path speedup over the reference interpreter, per mode.
MIN_SPEEDUP = 3.0

#: Filled by the rate tests, consumed by test_publish_micro_json (tests
#: in this module run in definition order under pytest).
_RECORDED = {}


@pytest.fixture(scope="module")
def hot_program():
    return compile_source(_HOT_LOOP, name="hot")


def _run(program, dep, fast_path=None):
    machine = program.make_machine(fast_path=fast_path)
    vector = DepVector(program.layout.size) if dep else None
    result = machine.run(max_instructions=10_000_000, dep=vector)
    return result.instructions


def _reference_mips(program, dep):
    start = time.perf_counter()
    instructions = _run(program, dep, fast_path=False)
    return instructions / (time.perf_counter() - start) / 1e6


def test_modeled_rates_match_paper(benchmark):
    cm = benchmark.pedantic(CostModel, rounds=1, iterations=1)
    assert cm.exec_seconds(2.6e6, dep_tracking=False) == pytest.approx(1.0)
    assert cm.exec_seconds(2.3e6, dep_tracking=True) == pytest.approx(1.0)
    overhead = cm.mips_base / cm.mips_dep - 1.0
    assert overhead == pytest.approx(0.13, abs=0.01)


def test_baseline_instruction_rate(benchmark, hot_program):
    instructions = benchmark.pedantic(_run, args=(hot_program, False),
                                      rounds=3, iterations=1)
    mips = instructions / benchmark.stats.stats.mean / 1e6
    ref_mips = _reference_mips(hot_program, False)
    _RECORDED["mips_baseline"] = mips
    _RECORDED["mips_baseline_reference"] = ref_mips
    publish("micro_baseline",
            "Python VM baseline: %.3f MIPS over %d instructions "
            "(reference tier: %.3f MIPS, fast path %.1fx; modeled: "
            "2.6 MIPS)" % (mips, instructions, ref_mips, mips / ref_mips))
    assert instructions > 50_000


def test_dependency_tracking_rate(benchmark, hot_program):
    instructions = benchmark.pedantic(_run, args=(hot_program, True),
                                      rounds=3, iterations=1)
    mips = instructions / benchmark.stats.stats.mean / 1e6
    ref_mips = _reference_mips(hot_program, True)
    _RECORDED["mips_dep_tracking"] = mips
    _RECORDED["mips_dep_tracking_reference"] = ref_mips
    publish("micro_deptrack",
            "Python VM with dependency tracking: %.3f MIPS "
            "(reference tier: %.3f MIPS, fast path %.1fx; modeled: "
            "2.3 MIPS)" % (mips, ref_mips, mips / ref_mips))
    assert instructions > 50_000


def test_publish_micro_json(hot_program):
    if "mips_baseline" not in _RECORDED:  # rate tests deselected
        pytest.skip("instruction-rate tests did not run")
    metrics = dict(_RECORDED)
    metrics["speedup_baseline"] = (metrics["mips_baseline"]
                                   / metrics["mips_baseline_reference"])
    metrics["speedup_dep_tracking"] = (
        metrics["mips_dep_tracking"]
        / metrics["mips_dep_tracking_reference"])
    publish_metrics("micro", metrics)
    assert metrics["speedup_baseline"] >= MIN_SPEEDUP
    assert metrics["speedup_dep_tracking"] >= MIN_SPEEDUP
