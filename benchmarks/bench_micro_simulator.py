"""§5.3 micro-benchmarks: simulator instruction rates.

The paper measures its TBFS at 2.6 MIPS baseline and 2.3 MIPS with
dependency tracking (13% overhead). Those are the *modeled* rates every
experiment charges; this module both asserts the model and measures the
real Python VM's throughput (reported for transparency — the Python VM
is orders of magnitude slower, which is exactly why time is simulated).
"""

import pytest

from conftest import publish

from repro.cluster import CostModel
from repro.machine import DepVector
from repro.minic import compile_source

_HOT_LOOP = """
int sink;
int main() {
    int i;
    int x = 0;
    for (i = 0; i < 12000; i++) { x = x + i; x = x ^ (i << 1); }
    sink = x;
    return x;
}
"""


@pytest.fixture(scope="module")
def hot_program():
    return compile_source(_HOT_LOOP, name="hot")


def _run(program, dep):
    machine = program.make_machine()
    vector = DepVector(program.layout.size) if dep else None
    result = machine.run(max_instructions=10_000_000, dep=vector)
    return result.instructions


def test_modeled_rates_match_paper(benchmark):
    cm = benchmark.pedantic(CostModel, rounds=1, iterations=1)
    assert cm.exec_seconds(2.6e6, dep_tracking=False) == pytest.approx(1.0)
    assert cm.exec_seconds(2.3e6, dep_tracking=True) == pytest.approx(1.0)
    overhead = cm.mips_base / cm.mips_dep - 1.0
    assert overhead == pytest.approx(0.13, abs=0.01)


def test_baseline_instruction_rate(benchmark, hot_program):
    instructions = benchmark.pedantic(_run, args=(hot_program, False),
                                      rounds=3, iterations=1)
    mips = instructions / benchmark.stats.stats.mean / 1e6
    publish("micro_baseline",
            "Python VM baseline: %.3f MIPS over %d instructions "
            "(modeled: 2.6 MIPS)" % (mips, instructions))
    assert instructions > 50_000


def test_dependency_tracking_rate(benchmark, hot_program):
    instructions = benchmark.pedantic(_run, args=(hot_program, True),
                                      rounds=3, iterations=1)
    mips = instructions / benchmark.stats.stats.mean / 1e6
    publish("micro_deptrack",
            "Python VM with dependency tracking: %.3f MIPS "
            "(modeled: 2.3 MIPS)" % mips)
    assert instructions > 50_000
